// Model-checker harness tests (tools/model_check). Two tiers:
//
//   * passthrough — the scenario bodies run on free-running threads with the
//     real std primitives, in EVERY build mode. This is the leg the TSan CI
//     job runs to prove the schedule-point seam and the scenarios are
//     race-free.
//   * controlled exploration — checking builds only (DFTFE_MODEL_CHECK=ON):
//     exhaustive schedule enumeration of the protocol scenarios, deadlock
//     self-test, and the two seeded mutants that prove the harness has
//     teeth. GTEST_SKIPped in production builds.

#include <gtest/gtest.h>

#include "dd/schedule.hpp"
#include "harness.hpp"
#include "scenarios.hpp"

#if DFTFE_MODEL_CHECK
#include "cooperative.hpp"
#endif

namespace dftfe::mc {
namespace {

namespace sc = scenarios;

TEST(ModelCheckPassthrough, AllScenariosRunCleanOnFreeThreads) {
  for (const auto& spec : sc::all_scenarios()) {
    SCOPED_TRACE(spec.scenario.name);
    ASSERT_NO_THROW(run_passthrough(spec.scenario, 25));
  }
}

#if DFTFE_MODEL_CHECK

ExploreResult explore_named(const std::string& name, int preemption_bound = -1,
                            int max_violations = 1) {
  for (const auto& spec : sc::all_scenarios()) {
    if (spec.scenario.name != name) continue;
    ExploreOptions opt;
    opt.preemption_bound =
        (preemption_bound != -1) ? preemption_bound : spec.preemption_bound;
    opt.max_schedules = spec.max_schedules;
    opt.max_seconds = spec.max_seconds;
    opt.max_violations = max_violations;
    Explorer ex;
    return ex.explore(spec.scenario, opt);
  }
  throw std::logic_error("unknown scenario: " + name);
}

/// RAII mutant selection so a failing assertion can't leak the mutant into
/// later tests.
struct MutantScope {
  explicit MutantScope(dd::sched::Mutant m) { dd::sched::set_mutant(m); }
  ~MutantScope() { dd::sched::set_mutant(dd::sched::Mutant::none); }
};

// Acceptance gate: the 2-lane sync halo exchange is explored exhaustively
// (more than one schedule), with zero violations on trunk.
TEST(ModelCheckExplore, Halo2SyncExhaustiveAndClean) {
  const ExploreResult res = explore_named("halo_sync_2");
  EXPECT_TRUE(res.complete) << "exploration did not exhaust the schedule tree";
  EXPECT_GT(res.schedules, 1) << "a single schedule means the seam never branched";
  EXPECT_TRUE(res.ok()) << res.violations.front().message
                        << "\n" << res.violations.front().trace;
  RecordProperty("schedules", static_cast<int>(res.schedules));
  RecordProperty("pruned", static_cast<int>(res.redundant));
}

TEST(ModelCheckExplore, SyncAndAsyncBodiesAgreeBitwiseAcrossAllSchedules) {
  // Both bodies assert bitwise equality against the same closed-form
  // reference inside check(), so two clean exhaustive explorations prove
  // sync ≡ async for every schedule of each.
  const ExploreResult s = explore_named("halo_sync_2");
  const ExploreResult a = explore_named("halo_async_2");
  EXPECT_TRUE(s.complete && s.ok());
  EXPECT_TRUE(a.complete && a.ok());
  EXPECT_GT(a.schedules, 1);
}

TEST(ModelCheckExplore, ProtocolEdgeScenariosClean) {
  for (const char* name :
       {"backpressure", "close_waiter", "close_racing_post", "drift_fail",
        "reset_reuse", "halo_chain_3"}) {
    SCOPED_TRACE(name);
    const ExploreResult res = explore_named(name);
    EXPECT_TRUE(res.ok()) << res.violations.front().message << "\n"
                          << res.violations.front().trace;
    EXPECT_TRUE(res.complete || res.hit_schedule_cap || res.hit_time_cap);
    EXPECT_GT(res.schedules, 1);
  }
}

TEST(ModelCheckExplore, PreemptionBoundedSweepStillBranches) {
  const ExploreResult res = explore_named("halo_chain_4", /*preemption_bound=*/2);
  EXPECT_TRUE(res.ok()) << res.violations.front().message;
  EXPECT_GT(res.schedules, 1);
}

// Teeth check 1: a genuinely broken protocol (both lanes receive before
// sending) must be reported as a deadlock, in the very first schedule.
TEST(ModelCheckExplore, DetectsRealDeadlock) {
  struct BrokenState {
    sc::Channel up, dn;
  };
  const Scenario broken = make_scenario<BrokenState>(
      "recv_before_send", "intentionally deadlocking order", 2,
      [](Registrar& reg) {
        auto st = std::make_shared<BrokenState>();
        st->up.init(dd::Wire::fp64, sc::kPlane);
        st->dn.init(dd::Wire::fp64, sc::kPlane);
        reg.channel(st->up, "ch[0->1]");
        reg.channel(st->dn, "ch[1->0]");
        return st;
      },
      [](BrokenState& st, int tid) {
        sc::Channel& out = (tid == 0) ? st.up : st.dn;
        sc::Channel& in = (tid == 0) ? st.dn : st.up;
        const int s = in.wait_packet();  // deadlock: nobody has posted yet
        in.release(s);
        sc::post_packet(out, tid, 0);
      },
      std::function<void(BrokenState&)>{});
  ExploreOptions opt;
  Explorer ex;
  const ExploreResult res = ex.explore(broken, opt);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations.front().message.find("deadlock"), std::string::npos)
      << res.violations.front().message;
}

// Teeth check 2: the seeded drop-notify mutant (a channel swallows its first
// packet-published notification) must surface as a lost-wakeup deadlock.
// Probed on the one-step exchange: in the multi-step scenarios the *next*
// publish re-wakes the parked receiver, so one dropped notify self-heals —
// the checker proving that is itself evidence it explores faithfully.
TEST(ModelCheckMutants, DroppedNotifyIsCaught) {
  const MutantScope m(dd::sched::Mutant::drop_notify);
  const ExploreResult res = explore_named("halo_sync_2_min");
  ASSERT_FALSE(res.ok()) << "checker failed to catch the dropped notify";
  EXPECT_NE(res.violations.front().message.find("deadlock"), std::string::npos)
      << res.violations.front().message;
}

// Teeth check 3: the seeded skip-gen mutant (one buffer-generation bump is
// skipped) must break the consumed-exactly-once sequence check. Unlike the
// dropped notify this is fatal in every schedule, so the full 2-step
// scenario catches it on the very first run.
TEST(ModelCheckMutants, SkippedGenerationBumpIsCaught) {
  const MutantScope m(dd::sched::Mutant::skip_gen);
  const ExploreResult res = explore_named("halo_sync_2");
  ASSERT_FALSE(res.ok()) << "checker failed to catch the skipped generation bump";
  EXPECT_NE(res.violations.front().message.find("generation"), std::string::npos)
      << res.violations.front().message;
}

#else  // !DFTFE_MODEL_CHECK

TEST(ModelCheckExplore, RequiresCheckingBuild) {
  GTEST_SKIP() << "controlled exploration needs -DDFTFE_MODEL_CHECK=ON; "
                  "passthrough coverage ran above";
}

#endif  // DFTFE_MODEL_CHECK

}  // namespace
}  // namespace dftfe::mc
