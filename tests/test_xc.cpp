// Tests for the XC functionals: LDA-PW92 values and consistency, PBE limits
// and derivative consistency, MLXC structure (LDA recovery, potential via
// back-propagation vs finite differences) and trainer behavior.

#include <gtest/gtest.h>

#include <cmath>

#include "xc/functional.hpp"
#include "xc/lda.hpp"
#include "xc/mlxc.hpp"
#include "xc/pbe.hpp"

namespace dftfe::xc {
namespace {

TEST(LdaPW92, DiracExchangeValue) {
  LdaPW92 lda;
  std::vector<double> rho{1.0}, sigma, exc, vrho, vsigma;
  lda.evaluate(rho, sigma, exc, vrho, vsigma);
  const double ex = kExLda;  // rho = 1
  const auto [ec, dec] = pw92_ec(std::cbrt(3.0 / (4.0 * kPi)));
  (void)dec;
  EXPECT_NEAR(exc[0], ex + ec, 1e-12);
  EXPECT_LT(exc[0], 0.0);
}

TEST(LdaPW92, CorrelationKnownHighAndLowDensityBehavior) {
  // ec is negative, monotonically increasing toward 0 with rs.
  double prev = -1e9;
  for (double rs : {0.5, 1.0, 2.0, 5.0, 10.0, 50.0}) {
    const double ec = pw92_ec(rs).first;
    EXPECT_LT(ec, 0.0);
    EXPECT_GT(ec, prev);
    prev = ec;
  }
  // Literature spot values for PW92 (zeta=0): ec(rs=1) ~ -0.0598, ec(rs=5) ~ -0.0281.
  EXPECT_NEAR(pw92_ec(1.0).first, -0.0598, 5e-3);
  EXPECT_NEAR(pw92_ec(5.0).first, -0.0281, 3e-3);
}

TEST(LdaPW92, DerivativeMatchesFiniteDifference) {
  for (double rs : {0.3, 1.0, 4.0, 20.0}) {
    const double h = 1e-6 * rs;
    const double fd = (pw92_ec(rs + h).first - pw92_ec(rs - h).first) / (2 * h);
    EXPECT_NEAR(pw92_ec(rs).second, fd, 1e-6 * std::abs(fd) + 1e-10);
  }
}

TEST(LdaPW92, PotentialConsistentWithEnergyDensity) {
  // vrho = d(rho exc)/drho via finite differences.
  LdaPW92 lda;
  for (double r : {0.01, 0.1, 1.0, 10.0}) {
    std::vector<double> exc, vrho, vs, sigma;
    lda.evaluate({r}, sigma, exc, vrho, vs);
    const double h = 1e-6 * r;
    std::vector<double> ep, em, tmp, tmp2;
    lda.evaluate({r + h}, sigma, ep, tmp, tmp2);
    lda.evaluate({r - h}, sigma, em, tmp, tmp2);
    const double fd = ((r + h) * ep[0] - (r - h) * em[0]) / (2 * h);
    EXPECT_NEAR(vrho[0], fd, 1e-5 * std::abs(fd));
  }
}

TEST(GgaPbe, ReducesToLdaAtZeroGradient) {
  LdaPW92 lda;
  GgaPbe pbe;
  std::vector<double> rho{0.02, 0.3, 2.5}, sigma{0.0, 0.0, 0.0};
  std::vector<double> e1, v1, s1, e2, v2, s2;
  lda.evaluate(rho, sigma, e1, v1, s1);
  pbe.evaluate(rho, sigma, e2, v2, s2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(e1[i], e2[i], 1e-8);
    EXPECT_NEAR(v1[i], v2[i], 1e-5);
  }
}

TEST(GgaPbe, ExchangeEnhancementLimits) {
  EXPECT_DOUBLE_EQ(pbe_fx(0.0), 1.0);
  // Monotone increasing, bounded by 1 + kappa = 1.804.
  double prev = 1.0;
  for (double s2 : {0.1, 1.0, 10.0, 100.0, 1e4}) {
    const double f = pbe_fx(s2);
    EXPECT_GT(f, prev);
    EXPECT_LT(f, 1.805);
    prev = f;
  }
}

TEST(GgaPbe, CorrelationHVanishesAtZeroGradientAndIsPositive) {
  EXPECT_NEAR(pbe_h(0.5, 0.0), 0.0, 1e-14);
  for (double t2 : {0.1, 1.0, 5.0}) EXPECT_GT(pbe_h(0.5, t2), 0.0);
}

TEST(GgaPbe, DerivativesConsistentWithEnergyDensity) {
  GgaPbe pbe;
  for (double r : {0.05, 0.7, 3.0}) {
    for (double sg : {0.0, 0.01, 0.5, 4.0}) {
      std::vector<double> exc, vrho, vsigma;
      pbe.evaluate({r}, {sg}, exc, vrho, vsigma);
      const double hr = 1e-5 * r;
      const double fd_r =
          (GgaPbe::energy_density(r + hr, sg) - GgaPbe::energy_density(r - hr, sg)) / (2 * hr);
      EXPECT_NEAR(vrho[0], fd_r, 1e-4 * (std::abs(fd_r) + 0.1));
      if (sg > 0) {
        const double hs = 1e-5 * sg;
        const double fd_s =
            (GgaPbe::energy_density(r, sg + hs) - GgaPbe::energy_density(r, sg - hs)) /
            (2 * hs);
        EXPECT_NEAR(vsigma[0], fd_s, 1e-3 * (std::abs(fd_s) + 1e-4));
      }
    }
  }
}

TEST(GgaPbe, EnergyPerParticleBelowLdaExchangeOnly) {
  // PBE exchange enhancement makes exc more negative than LDA exchange.
  GgaPbe pbe;
  std::vector<double> exc, vrho, vsigma;
  pbe.evaluate({1.0}, {1.0}, exc, vrho, vsigma);
  EXPECT_LT(exc[0], kExLda);
}

// ---------- MLXC ----------

TEST(Mlxc, ConstantFRecoversScaledDiracExchange) {
  // A network with zero weights outputs F = b; pick b = 1 -> Dirac exchange.
  ml::Mlp net({3, 4, 1}, 3);
  for (int l = 0; l < net.n_layers(); ++l) {
    net.weights(l).zero();
    std::fill(net.biases(l).begin(), net.biases(l).end(), 0.0);
  }
  net.biases(net.n_layers() - 1)[0] = 1.0;
  MlxcFunctional mlxc(std::move(net));
  std::vector<double> rho{0.3, 1.7}, sigma{0.2, 1.0}, exc, vrho, vsigma;
  mlxc.evaluate(rho, sigma, exc, vrho, vsigma);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(exc[i], kExLda * std::cbrt(rho[i]), 1e-12);
    EXPECT_NEAR(vrho[i], (4.0 / 3.0) * kExLda * std::cbrt(rho[i]), 1e-12);
    EXPECT_NEAR(vsigma[i], 0.0, 1e-12);
  }
}

TEST(Mlxc, PotentialConsistentWithEnergyDensityViaFd) {
  ml::Mlp net = MlxcFunctional::make_paper_network(2, 12, 9);
  MlxcFunctional mlxc(std::move(net));
  auto eden = [&](double r, double sg) {
    std::vector<double> exc, vr, vs;
    mlxc.evaluate({r}, {sg}, exc, vr, vs);
    return r * exc[0];
  };
  for (double r : {0.1, 0.9, 4.0}) {
    for (double sg : {0.01, 0.8}) {
      std::vector<double> exc, vrho, vsigma;
      mlxc.evaluate({r}, {sg}, exc, vrho, vsigma);
      const double hr = 1e-6 * r;
      const double fd_r = (eden(r + hr, sg) - eden(r - hr, sg)) / (2 * hr);
      EXPECT_NEAR(vrho[0], fd_r, 1e-5 * (std::abs(fd_r) + 1.0));
      const double hs = 1e-6 * sg;
      const double fd_s = (eden(r, sg + hs) - eden(r, sg - hs)) / (2 * hs);
      EXPECT_NEAR(vsigma[0], fd_s, 1e-5 * (std::abs(fd_s) + 1.0));
    }
  }
}

TEST(Mlxc, DescriptorsAreBoundedAndMonotone) {
  double x[3];
  MlxcFunctional::descriptors(1.0, 0.0, x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
  EXPECT_DOUBLE_EQ(x[2], 0.0);
  double prev = -1.0;
  for (double sg : {0.0, 0.1, 1.0, 100.0, 1e6}) {
    MlxcFunctional::descriptors(0.5, sg, x);
    EXPECT_GE(x[1], 0.0);
    EXPECT_LT(x[1], 1.0);
    EXPECT_GT(x[1], prev);
    prev = x[1];
  }
}

TEST(Mlxc, TrainerFitsLdaExchangePotential) {
  // Target: v_xc of pure Dirac exchange (F = 1). Starting from a random
  // network, the composite loss should drive F toward 1 on the sampled
  // range, i.e., recover the known functional from {rho, v_xc} data alone.
  std::vector<MlxcSystem> systems(1);
  auto& sys = systems[0];
  const int n = 10;
  double exc_total = 0.0;
  for (int i = 0; i < n; ++i) {
    MlxcSample s;
    s.rho = 0.1 + 0.1 * i;
    s.sigma = 0.1 * i;
    s.vxc = (4.0 / 3.0) * kExLda * std::cbrt(s.rho);
    s.weight = 1.0 / n;
    exc_total += s.weight * kExLda * std::pow(s.rho, 4.0 / 3.0);
    sys.samples.push_back(s);
  }
  sys.exc_total = exc_total;

  ml::Mlp net = MlxcFunctional::make_paper_network(1, 8, 7);
  auto report = train_mlxc(net, systems, 4000, 3e-3);
  EXPECT_LT(report.loss_vxc, 1e-5);
  EXPECT_LT(report.loss_exc, 1e-6);

  // The learned F should be ~1 on the training manifold.
  MlxcFunctional mlxc(std::move(net));
  std::vector<double> rho, sigma, exc, vrho, vsigma;
  for (const auto& s : sys.samples) {
    rho.push_back(s.rho);
    sigma.push_back(s.sigma);
  }
  mlxc.evaluate(rho, sigma, exc, vrho, vsigma);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(exc[i] / (kExLda * std::cbrt(rho[i])), 1.0, 0.05);
}

TEST(Mlxc, TrainingReducesCompositeLoss) {
  // Fit a gradient-dependent target (PBE-exchange-like) and require a large
  // reduction of both loss terms.
  GgaPbe pbe;
  std::vector<MlxcSystem> systems(1);
  auto& sys = systems[0];
  for (int i = 0; i < 60; ++i) {
    MlxcSample s;
    s.rho = 0.1 + 0.03 * i;
    s.sigma = 0.05 * (1 + i % 5);
    std::vector<double> exc, vrho, vsigma;
    pbe.evaluate({s.rho}, {s.sigma}, exc, vrho, vsigma);
    s.vxc = vrho[0];
    s.weight = 1.0 / 60;
    sys.exc_total += s.weight * s.rho * exc[0];
    sys.samples.push_back(s);
  }
  ml::Mlp net = MlxcFunctional::make_paper_network(2, 16, 5);
  auto early = train_mlxc(net, systems, 5, 3e-3);
  ml::Mlp net2 = MlxcFunctional::make_paper_network(2, 16, 5);
  auto late = train_mlxc(net2, systems, 2000, 3e-3);
  EXPECT_LT(late.loss_vxc, 0.05 * early.loss_vxc + 1e-12);
}

}  // namespace
}  // namespace dftfe::xc
