// Tests for the hot-path workspace layer (la/workspace.hpp) and the fused /
// restructured kernels that ride on it:
//
//  * WorkMatrix / Workspace pool / ensure_scratch allocation accounting,
//  * the steady-state zero-allocation invariant of the SCF hot path
//    (Hamiltonian applies and full ChFES cycles after warmup),
//  * equivalence of the fused Chebyshev apply epilogue with the plain apply,
//  * equivalence of the public pointer-rotating filter() with a reference
//    three-term recurrence built from plain applies,
//  * equivalence of the GEMM-cast sum factorization with the dense cell-matrix
//    path and the scalar sum-factorization loop nest,
//  * equivalence of the Hermitian-mirrored (half-triangle) overlap with the
//    full A^H B product, in both FP64 and mixed-precision modes,
//  * FLOP accounting: degenerate GEMM calls (k = 0 or alpha = 0) charge zero.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string_view>
#include <vector>

#include "base/flops.hpp"
#include "fe/cell_ops.hpp"
#include "ks/chfes.hpp"
#include "ks/hamiltonian.hpp"
#include "la/batched.hpp"
#include "la/blas.hpp"
#include "la/mixed.hpp"
#include "la/workspace.hpp"
#include "obs/metrics.hpp"

// Counting global operator new: the metrics zero-allocation suite asserts
// that string_view lookups on warmed registry keys never allocate (the
// transparent-comparator invariant of obs::MetricsRegistry). Disabled under
// ASan/TSan, whose interceptors own the allocator.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DFTFE_COUNT_GLOBAL_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DFTFE_COUNT_GLOBAL_NEW 0
#else
#define DFTFE_COUNT_GLOBAL_NEW 1
#endif
#else
#define DFTFE_COUNT_GLOBAL_NEW 1
#endif

namespace {
std::atomic<std::int64_t> g_global_new_calls{0};
}  // namespace

#if DFTFE_COUNT_GLOBAL_NEW
void* operator new(std::size_t sz) {
  g_global_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) {
  g_global_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace dftfe {
namespace {

// ---------- workspace primitives ----------

TEST(Workspace, WorkMatrixCountsOnlyHighWaterGrowth) {
  la::WorkspaceCounters::reset();
  la::WorkMatrix<double> wm;
  wm.acquire(8, 8);
  EXPECT_EQ(la::WorkspaceCounters::allocations(), 1);
  EXPECT_EQ(la::WorkspaceCounters::bytes_allocated(),
            static_cast<std::int64_t>(64 * sizeof(double)));
  wm.acquire(4, 16);  // same total size: reshape only
  wm.acquire(2, 3);   // smaller: reshape only
  EXPECT_EQ(la::WorkspaceCounters::allocations(), 1);
  EXPECT_EQ(la::WorkspaceCounters::checkouts(), 3);
  wm.acquire(16, 8);  // grows past the high-water mark
  EXPECT_EQ(la::WorkspaceCounters::allocations(), 2);
}

TEST(Workspace, PoolReusesReturnedBuffers) {
  la::Workspace<double> ws;
  la::WorkspaceCounters::reset();
  {
    auto a = ws.checkout(16, 16);
    auto b = ws.checkout(8, 8);
    (*a)(0, 0) = 1.0;
    (*b)(0, 0) = 2.0;
  }
  EXPECT_EQ(ws.pooled(), 2u);
  EXPECT_EQ(la::WorkspaceCounters::allocations(), 2);
  la::WorkspaceCounters::reset();
  {
    auto c = ws.checkout(12, 12, /*zeroed=*/true);  // best fit: the 16x16 slot
    EXPECT_EQ((*c)(0, 0), 0.0);
    auto d = ws.checkout(8, 8);
    (void)d;
  }
  EXPECT_EQ(la::WorkspaceCounters::allocations(), 0);
  EXPECT_EQ(la::WorkspaceCounters::checkouts(), 2);
  ws.clear();
  EXPECT_EQ(ws.pooled(), 0u);
}

TEST(Workspace, PoolHighWaterAndLeaseAccounting) {
  la::Workspace<double> ws;
  EXPECT_EQ(ws.highwater_bytes(), 0);
  EXPECT_EQ(ws.leases(), 0);
  {
    auto a = ws.checkout(16, 16);
    auto b = ws.checkout(8, 8);
  }
  const auto sz = static_cast<std::int64_t>(sizeof(double));
  EXPECT_EQ(ws.leases(), 2);
  EXPECT_EQ(ws.highwater_bytes(), (256 + 64) * sz);
  {
    auto c = ws.checkout(12, 12);  // best fit reuses the 256-element slot
  }
  EXPECT_EQ(ws.leases(), 3);
  EXPECT_EQ(ws.highwater_bytes(), (256 + 64) * sz);
  {
    auto d = ws.checkout(20, 20);  // grows the largest slot: 256 -> 400
  }
  EXPECT_EQ(ws.leases(), 4);
  EXPECT_EQ(ws.highwater_bytes(), (400 + 64) * sz);
}

TEST(Workspace, WorkMatrixHighWaterBytes) {
  la::WorkMatrix<double> wm;
  EXPECT_EQ(wm.highwater_bytes(), 0);
  wm.acquire(8, 8);
  wm.acquire(4, 4);  // shrink: high-water unchanged
  EXPECT_EQ(wm.highwater(), 64);
  EXPECT_EQ(wm.highwater_bytes(), static_cast<std::int64_t>(64 * sizeof(double)));
}

TEST(Workspace, EnsureScratchGrowOnly) {
  std::vector<float> v;
  la::WorkspaceCounters::reset();
  la::ensure_scratch(v, 100);
  la::ensure_scratch(v, 50);  // no-op: already large enough
  EXPECT_EQ(la::WorkspaceCounters::allocations(), 1);
  la::ensure_scratch(v, 200);
  EXPECT_EQ(la::WorkspaceCounters::allocations(), 2);
  EXPECT_EQ(v.size(), 200u);
}

// ---------- FLOP accounting on degenerate GEMMs (satellite fix) ----------

TEST(Workspace, DegenerateGemmChargesZeroFlops) {
  la::MatrixD A(8, 8), B(8, 8), C(8, 8);
  for (index_t i = 0; i < A.size(); ++i) A.data()[i] = B.data()[i] = 0.5;
  FlopCounter::global().clear();
  la::gemm('N', 'N', 0.0, A, B, 1.0, C);  // alpha = 0: scaling only
  EXPECT_EQ(FlopCounter::global().total(), 0.0);
  la::gemm_strided_batched<double>('N', 'N', 8, 8, 0, 1.0, A.data(), 8, 0, B.data(), 8, 0,
                                   1.0, C.data(), 8, 0, 4);  // k = 0
  EXPECT_EQ(FlopCounter::global().total(), 0.0);
  la::gemm('N', 'N', 1.0, A, B, 0.0, C);
  EXPECT_GT(FlopCounter::global().total(), 0.0);
  FlopCounter::global().clear();
}

// ---------- shared fixtures ----------

ks::Hamiltonian<double> make_hamiltonian(const fe::DofHandler& dofh) {
  ks::Hamiltonian<double> H(dofh);
  std::vector<double> v(dofh.ndofs());
  for (index_t i = 0; i < dofh.ndofs(); ++i) {
    const auto p = dofh.dof_point(i);
    v[i] = -0.5 + 0.05 * std::sin(p[0]) * std::cos(p[1] + 0.3 * p[2]);
  }
  H.set_potential(std::move(v));
  return H;
}

// ---------- fused apply equivalence ----------

TEST(Workspace, FusedApplyMatchesPlainApplyComposition) {
  const fe::Mesh mesh = fe::make_uniform_mesh(6.0, 2, true);
  const fe::DofHandler dofh(mesh, 3);
  auto H = make_hamiltonian(dofh);
  const index_t n = dofh.ndofs(), B = 5;
  la::MatrixD X(n, B), Z(n, B), Y, R;
  for (index_t i = 0; i < X.size(); ++i) {
    X.data()[i] = std::sin(0.017 * i);
    Z.data()[i] = std::cos(0.011 * i);
  }
  const double c = 0.37, scale = 1.9, zc = 0.81;

  H.apply(X, R);  // R = H X
  la::MatrixD expect(n, B);
  for (index_t j = 0; j < B; ++j)
    for (index_t i = 0; i < n; ++i)
      expect(i, j) = scale * (R(i, j) - c * X(i, j)) - zc * Z(i, j);

  H.apply_fused(X, Y, c, scale, &Z, zc);
  ASSERT_EQ(Y.rows(), n);
  ASSERT_EQ(Y.cols(), B);
  for (index_t i = 0; i < Y.size(); ++i)
    EXPECT_NEAR(Y.data()[i], expect.data()[i], 1e-11) << "entry " << i;

  // Z omitted: Y = scale (H X - c X).
  H.apply_fused(X, Y, c, scale, nullptr, 0.0);
  for (index_t j = 0; j < B; ++j)
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(Y(i, j), scale * (R(i, j) - c * X(i, j)), 1e-11);
}

// ---------- filter equivalence ----------

TEST(Workspace, FilterMatchesReferenceChebyshevRecurrence) {
  const fe::Mesh mesh = fe::make_uniform_mesh(6.0, 2, true);
  const fe::DofHandler dofh(mesh, 3);
  auto H = make_hamiltonian(dofh);
  ks::ChfesOptions opt;
  opt.cheb_degree = 7;
  opt.block_size = 3;  // exercise the column-block loop (nstates not divisible)
  ks::ChebyshevFilteredSolver<double> solver(H, 7, opt);
  solver.initialize_random(11);
  const double a = 2.0, b = 40.0, a0 = -1.0;
  solver.set_bounds(a, b, a0);
  const la::MatrixD X0 = solver.subspace();  // copy before filtering

  solver.filter();
  const la::MatrixD& F = solver.subspace();

  // Reference: the scaled-and-shifted three-term recurrence (Zhou et al.)
  // written with plain applies and explicit temporaries.
  const double e = (b - a) / 2.0, c = (b + a) / 2.0;
  double sigma = e / (a0 - c);
  const double sigma1 = sigma;
  la::MatrixD Xk = X0, Yk(X0.rows(), X0.cols()), Hx;
  H.apply(Xk, Hx);
  for (index_t i = 0; i < Xk.size(); ++i)
    Yk.data()[i] = (Hx.data()[i] - c * Xk.data()[i]) * (sigma1 / e);
  for (int k = 2; k <= opt.cheb_degree; ++k) {
    const double sigma2 = 1.0 / (2.0 / sigma1 - sigma);
    H.apply(Yk, Hx);
    la::MatrixD Yn(X0.rows(), X0.cols());
    for (index_t i = 0; i < Xk.size(); ++i)
      Yn.data()[i] = (Hx.data()[i] - c * Yk.data()[i]) * (2.0 * sigma2 / e) -
                     (sigma * sigma2) * Xk.data()[i];
    Xk = Yk;
    Yk = Yn;
    sigma = sigma2;
  }

  ASSERT_EQ(F.rows(), Yk.rows());
  ASSERT_EQ(F.cols(), Yk.cols());
  double scale = 0.0;
  for (index_t i = 0; i < Yk.size(); ++i) scale = std::max(scale, std::abs(Yk.data()[i]));
  for (index_t i = 0; i < F.size(); ++i)
    EXPECT_NEAR(F.data()[i], Yk.data()[i], 1e-10 * scale) << "entry " << i;
}

// ---------- sum-factorization equivalence ----------

TEST(Workspace, SumfacGemmMatchesDenseAndScalarPaths) {
  for (const bool periodic : {true, false}) {
    const fe::Mesh mesh = fe::make_uniform_mesh(5.0, 2, periodic);
    const fe::DofHandler dofh(mesh, 4);
    fe::CellStiffness<double> K(dofh, 0.5);
    const index_t n = dofh.ndofs(), B = 3;
    la::MatrixD X(n, B), Yd(n, B), Ys(n, B), Yg(n, B);
    for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.013 * i + 0.2);
    for (index_t i = 0; i < n * B; ++i)
      Yd.data()[i] = Ys.data()[i] = Yg.data()[i] = 0.1 * std::cos(0.07 * i);

    K.apply_add(X, Yd);
    K.apply_add_sumfac_scalar(X, Ys);
    K.apply_add_sumfac(X, Yg);

    double scale = 0.0;
    for (index_t i = 0; i < Yd.size(); ++i) scale = std::max(scale, std::abs(Yd.data()[i]));
    for (index_t i = 0; i < Yd.size(); ++i) {
      EXPECT_NEAR(Yg.data()[i], Yd.data()[i], 1e-10 * scale) << "dense vs gemm, entry " << i;
      EXPECT_NEAR(Yg.data()[i], Ys.data()[i], 1e-10 * scale) << "scalar vs gemm, entry " << i;
    }
  }
}

// ---------- Hermitian-mirrored overlap equivalence ----------

TEST(Workspace, HermitianOverlapMatchesFullProductReal) {
  const index_t n = 60, N = 23;  // N not a multiple of the block size
  la::MatrixD A(n, N), S, Sref(N, N);
  for (index_t i = 0; i < A.size(); ++i) A.data()[i] = std::sin(0.37 * i) + 0.1;
  la::gemm('C', 'N', 1.0, A, A, 0.0, Sref);

  la::overlap_hermitian_mixed(A, A, S, /*mp_block=*/8, /*mixed=*/false);
  ASSERT_EQ(S.rows(), N);
  ASSERT_EQ(S.cols(), N);
  for (index_t i = 0; i < S.size(); ++i)
    EXPECT_NEAR(S.data()[i], Sref.data()[i], 1e-11) << "entry " << i;

  la::overlap_hermitian_mixed(A, A, S, /*mp_block=*/8, /*mixed=*/true);
  double scale = 0.0;
  for (index_t i = 0; i < Sref.size(); ++i)
    scale = std::max(scale, std::abs(Sref.data()[i]));
  for (index_t j = 0; j < N; ++j)
    for (index_t i = 0; i < N; ++i) {
      // FP32 off-diagonal blocks: looser tolerance; exact symmetry always.
      EXPECT_NEAR(S(i, j), Sref(i, j), 1e-5 * scale);
      EXPECT_EQ(S(i, j), S(j, i));
    }
}

TEST(Workspace, HermitianOverlapMatchesFullProductComplex) {
  const index_t n = 40, N = 11;
  la::MatrixZ A(n, N), B(n, N), S, Sref(N, N);
  for (index_t i = 0; i < A.size(); ++i) {
    A.data()[i] = complex_t(std::sin(0.31 * i), std::cos(0.19 * i));
    B.data()[i] = A.data()[i] * complex_t(1.0, 1e-3);  // near-Hermitian S
  }
  la::gemm('C', 'N', complex_t(1), A, B, complex_t(0), Sref);
  la::overlap_hermitian_mixed(A, B, S, /*mp_block=*/4, /*mixed=*/false);
  double scale = 0.0;
  for (index_t i = 0; i < Sref.size(); ++i)
    scale = std::max(scale, std::abs(Sref.data()[i]));
  for (index_t j = 0; j < N; ++j)
    for (index_t i = 0; i < N; ++i) {
      // The mirror assumes S Hermitian: off-triangle entries are conj
      // transposes, so compare against the Hermitian part of the reference.
      const complex_t herm =
          0.5 * (Sref(i, j) + std::conj(Sref(j, i)));
      EXPECT_NEAR(std::abs(S(i, j) - herm), 0.0, 2e-3 * scale);
    }
}

// ---------- zero-allocation steady state ----------

TEST(Workspace, HamiltonianApplyIsAllocationFreeAfterWarmup) {
  const fe::Mesh mesh = fe::make_uniform_mesh(6.0, 2, true);
  const fe::DofHandler dofh(mesh, 3);
  auto H = make_hamiltonian(dofh);
  const index_t n = dofh.ndofs();
  la::MatrixD X(n, 6), Y;
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.02 * i);
  std::vector<double> xv(n, 0.5), yv;

  H.apply(X, Y);  // warmup: persistent buffers size themselves
  H.apply(xv, yv);
  la::WorkspaceCounters::reset();
  for (int it = 0; it < 4; ++it) {
    H.apply(X, Y);
    H.apply(xv, yv);
  }
  EXPECT_EQ(la::WorkspaceCounters::allocations(), 0)
      << "steady-state Hamiltonian applies must not touch the heap";
  EXPECT_GT(la::WorkspaceCounters::checkouts(), 0);
}

TEST(Workspace, ChfesCycleIsAllocationFreeAfterWarmup) {
  const fe::Mesh mesh = fe::make_uniform_mesh(6.0, 2, true);
  const fe::DofHandler dofh(mesh, 3);
  auto H = make_hamiltonian(dofh);
  ks::ChfesOptions opt;
  opt.cheb_degree = 6;
  opt.block_size = 4;
  ks::ChebyshevFilteredSolver<double> solver(H, 8, opt);
  solver.initialize_random(7);

  // Warmup: two cycles (the first takes the cold-bounds branch; the second
  // the Ritz-value branch), sizing every persistent buffer and pool slot.
  solver.cycle();
  solver.cycle();
  la::WorkspaceCounters::reset();
  for (int it = 0; it < 3; ++it) solver.cycle();
  EXPECT_EQ(la::WorkspaceCounters::allocations(), 0)
      << "steady-state ChFES cycles must check out zero fresh heap buffers";
  EXPECT_GT(la::WorkspaceCounters::checkouts(), 0);
}

// ---------- metrics registry: zero-alloc string_view lookups ----------

TEST(Workspace, MetricsMutatorsAllocationFreeOnWarmKeys) {
#if !DFTFE_COUNT_GLOBAL_NEW
  GTEST_SKIP() << "global operator new counting disabled under sanitizers";
#else
  auto& m = obs::MetricsRegistry::global();
  // Warm the keys: the first touch of each name allocates its map node.
  m.counter_add("zat.counter", 1);
  m.gauge_set("zat.gauge", 0.0);
  m.histogram_record("zat.hist", 1e-3);

  const std::int64_t before = g_global_new_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    // string_view arguments: the transparent comparator must resolve the
    // existing keys without materializing a std::string.
    m.counter_add(std::string_view("zat.counter"), 2);
    m.gauge_set(std::string_view("zat.gauge"), 0.5 * i);
    m.histogram_record(std::string_view("zat.hist"), 1e-6 * (i + 1));
  }
  const std::int64_t after = g_global_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "metric mutators on existing keys must not touch the heap";
  EXPECT_EQ(m.counter("zat.counter"), 1 + 2 * 1000);
  EXPECT_EQ(m.histogram("zat.hist").count, 1001u);
#endif
}

}  // namespace
}  // namespace dftfe
