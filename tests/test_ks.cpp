// Tests for the Kohn-Sham engine: Hamiltonian structure, the Chebyshev
// filtered eigensolver (ChFES, Algorithm 1) against analytic spectra and
// dense diagonalization, k-point (complex) paths, mixed-precision accuracy,
// Fermi-Dirac occupancy bookkeeping, and full SCF loops on exactly solvable
// model systems.

#include <gtest/gtest.h>

#include <cmath>

#include "fe/gradient.hpp"
#include "ks/chfes.hpp"
#include "ks/hamiltonian.hpp"
#include "ks/scf.hpp"
#include "la/eig.hpp"
#include "obs/metrics.hpp"
#include "xc/lda.hpp"

namespace dftfe::ks {
namespace {

// ---------- nodal gradient (fe/gradient, exercised with the ks stack) ----------

TEST(NodalGradient, ExactForPolynomials) {
  const fe::Mesh m = fe::make_uniform_mesh(2.0, 2, false);
  fe::DofHandler dofh(m, 4);
  std::vector<double> f(dofh.ndofs());
  for (index_t g = 0; g < dofh.ndofs(); ++g) {
    const auto p = dofh.dof_point(g);
    f[g] = p[0] * p[0] + 3.0 * p[1] - p[2] * p[0];
  }
  const auto grad = fe::nodal_gradient(dofh, f);
  for (index_t g = 0; g < dofh.ndofs(); ++g) {
    const auto p = dofh.dof_point(g);
    EXPECT_NEAR(grad[0][g], 2.0 * p[0] - p[2], 1e-9);
    EXPECT_NEAR(grad[1][g], 3.0, 1e-9);
    EXPECT_NEAR(grad[2][g], -p[0], 1e-9);
  }
}

TEST(NodalGradient, DivergenceOfGradientOfSmoothField) {
  // div(grad(sin Gx)) = -G^2 sin(Gx), periodic.
  const double L = 6.0;
  const fe::Mesh m = fe::make_uniform_mesh(L, 3, true);
  fe::DofHandler dofh(m, 6);
  const double G = 2.0 * kPi / L;
  std::vector<double> f(dofh.ndofs());
  for (index_t g = 0; g < dofh.ndofs(); ++g)
    f[g] = std::sin(G * dofh.dof_point(g)[0]);
  const auto grad = fe::nodal_gradient(dofh, f);
  const auto lap = fe::nodal_divergence(dofh, grad);
  double maxerr = 0.0;
  for (index_t g = 0; g < dofh.ndofs(); ++g)
    maxerr = std::max(maxerr, std::abs(lap[g] + G * G * f[g]));
  EXPECT_LT(maxerr, 1e-3 * G * G);
}

// ---------- ChFES on analytic spectra ----------

TEST(Chfes, FreeElectronSpectrumPeriodicBox) {
  const double L = 2.0 * kPi;
  const fe::Mesh m = fe::make_uniform_mesh(L, 3, true);
  fe::DofHandler dofh(m, 4);
  Hamiltonian<double> H(dofh);
  H.set_potential(std::vector<double>(dofh.ndofs(), 0.0));
  ChfesOptions opt;
  opt.cheb_degree = 18;
  ChebyshevFilteredSolver<double> solver(H, 9, opt);
  solver.initialize_random(3);
  for (int c = 0; c < 14; ++c) solver.cycle();
  const auto& ev = solver.eigenvalues();
  // 0, then 0.5 with 6-fold degeneracy (G = +-1 in each direction).
  EXPECT_NEAR(ev[0], 0.0, 1e-5);
  for (int i = 1; i <= 6; ++i) EXPECT_NEAR(ev[i], 0.5, 5e-3) << "state " << i;
  EXPECT_GT(ev[7], 0.8);
  EXPECT_LT(solver.max_residual(7), 1e-4);
}

TEST(Chfes, HarmonicOscillatorLadder) {
  // v = 1/2 |r-c|^2 in a large isolated box: eigenvalues 1.5, 2.5 x3, 3.5 x6.
  const double L = 14.0;
  const fe::Mesh m = fe::make_uniform_mesh(L, 5, false);
  fe::DofHandler dofh(m, 5);
  Hamiltonian<double> H(dofh);
  std::vector<double> v(dofh.ndofs());
  for (index_t g = 0; g < dofh.ndofs(); ++g) {
    const auto p = dofh.dof_point(g);
    const double r2 = (p[0] - L / 2) * (p[0] - L / 2) + (p[1] - L / 2) * (p[1] - L / 2) +
                      (p[2] - L / 2) * (p[2] - L / 2);
    v[g] = 0.5 * r2;
  }
  H.set_potential(v);
  ChebyshevFilteredSolver<double> solver(H, 12);
  solver.initialize_random(5);
  for (int c = 0; c < 16; ++c) solver.cycle();
  const auto& ev = solver.eigenvalues();
  EXPECT_NEAR(ev[0], 1.5, 6e-3);
  for (int i = 1; i <= 3; ++i) EXPECT_NEAR(ev[i], 2.5, 2e-2);
  for (int i = 4; i <= 9; ++i) EXPECT_NEAR(ev[i], 3.5, 6e-2);
}

TEST(Chfes, MatchesDenseDiagonalizationWithPotential) {
  const fe::Mesh m = fe::make_uniform_mesh(3.0, 2, true);
  fe::DofHandler dofh(m, 2);  // 216 dofs
  Hamiltonian<double> H(dofh);
  std::vector<double> v(dofh.ndofs());
  for (index_t g = 0; g < dofh.ndofs(); ++g) {
    const auto p = dofh.dof_point(g);
    v[g] = std::sin(2.0 * kPi * p[0] / 3.0) * std::cos(2.0 * kPi * p[1] / 3.0);
  }
  H.set_potential(v);

  // Dense reference.
  const index_t n = dofh.ndofs();
  la::MatrixD Hd(n, n);
  {
    la::MatrixD I(n, n), HI;
    for (index_t i = 0; i < n; ++i) I(i, i) = 1.0;
    H.apply(I, HI);
    Hd = HI;
  }
  std::vector<double> ev_ref;
  la::MatrixD V;
  la::symmetric_eig(Hd, ev_ref, V);

  ChebyshevFilteredSolver<double> solver(H, 10);
  solver.initialize_random(7);
  for (int c = 0; c < 14; ++c) solver.cycle();
  const auto& ev = solver.eigenvalues();
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(ev[i], ev_ref[i], 1e-7) << "state " << i;
}

TEST(Chfes, KpointShiftsFreeElectronSpectrum) {
  // With Bloch vector k, the free-electron levels are |G + k|^2 / 2.
  const double L = 2.0 * kPi;
  const fe::Mesh m = fe::make_uniform_mesh(L, 3, true);
  fe::DofHandler dofh(m, 4);
  const std::array<double, 3> kpt{0.3, 0.0, 0.0};
  Hamiltonian<complex_t> H(dofh, kpt);
  H.set_potential(std::vector<double>(dofh.ndofs(), 0.0));
  ChebyshevFilteredSolver<complex_t> solver(H, 6);
  solver.initialize_random(9);
  for (int c = 0; c < 14; ++c) solver.cycle();
  const auto& ev = solver.eigenvalues();
  // Lowest levels: k^2/2, (1-0.3)^2/2, (1+0.3)^2/2, 0.5+k^2/2 (x4 from +-Gy, +-Gz)...
  EXPECT_NEAR(ev[0], 0.5 * 0.3 * 0.3, 1e-4);
  EXPECT_NEAR(ev[1], 0.5 * 0.7 * 0.7, 2e-3);
  EXPECT_NEAR(ev[2], 0.5 * (1.0 + 0.09), 5e-3);
  EXPECT_NEAR(ev[3], 0.5 * (1.0 + 0.09), 5e-3);
}

TEST(Chfes, MixedPrecisionMatchesFullPrecision) {
  const fe::Mesh m = fe::make_uniform_mesh(4.0, 2, true);
  fe::DofHandler dofh(m, 3);
  Hamiltonian<double> H(dofh);
  std::vector<double> v(dofh.ndofs());
  for (index_t g = 0; g < dofh.ndofs(); ++g) v[g] = -1.0 / (1.0 + g % 7);
  H.set_potential(v);

  ChfesOptions mp, fp;
  mp.mixed_precision = true;
  mp.mp_block = 4;  // force several off-diagonal FP32 blocks
  fp.mixed_precision = false;
  ChebyshevFilteredSolver<double> s1(H, 12, mp), s2(H, 12, fp);
  s1.initialize_random(11);
  s2.initialize_random(11);
  for (int c = 0; c < 12; ++c) {
    s1.cycle();
    s2.cycle();
  }
  // Mixed precision must retain FP64-level eigenvalues (paper Sec. 5.4.2):
  // error far below the 1e-4 Ha/atom discretization target.
  for (int i = 0; i < 12; ++i)
    EXPECT_NEAR(s1.eigenvalues()[i], s2.eigenvalues()[i], 1e-7) << "state " << i;
}

TEST(Chfes, SubspaceIsOrthonormalAfterCycle) {
  const fe::Mesh m = fe::make_uniform_mesh(3.0, 2, true);
  fe::DofHandler dofh(m, 3);
  Hamiltonian<double> H(dofh);
  H.set_potential(std::vector<double>(dofh.ndofs(), 0.0));
  ChebyshevFilteredSolver<double> solver(H, 8);
  solver.initialize_random(13);
  solver.cycle();
  const auto& X = solver.subspace();
  la::MatrixD G(8, 8);
  la::gemm('C', 'N', 1.0, X, X, 0.0, G);
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 8; ++i)
      EXPECT_NEAR(G(i, j), i == j ? 1.0 : 0.0, 5e-6);
}

TEST(Chfes, RecordsStepTimingsAndFlops) {
  ProfileRegistry::global().clear();
  FlopCounter::global().clear();
  const fe::Mesh m = fe::make_uniform_mesh(3.0, 2, true);
  fe::DofHandler dofh(m, 3);
  Hamiltonian<double> H(dofh);
  H.set_potential(std::vector<double>(dofh.ndofs(), 0.0));
  ChebyshevFilteredSolver<double> solver(H, 8);
  solver.initialize_random(17);
  solver.cycle();
  for (const char* step : {"CF", "CholGS-S", "CholGS-CI", "CholGS-O", "RR-P", "RR-D", "RR-SR"}) {
    EXPECT_NE(ProfileRegistry::global().find(step), nullptr) << step;
    EXPECT_GT(ProfileRegistry::global().seconds(step), 0.0) << step;
  }
  EXPECT_GT(FlopCounter::global().step("CF"), 0.0);
  EXPECT_GT(FlopCounter::global().step("RR-SR"), 0.0);
  ProfileRegistry::global().clear();
  FlopCounter::global().clear();
}

TEST(Chfes, CholeskyBreakdownRegularizationRetry) {
  // A deliberately rank-deficient subspace (all columns identical) makes the
  // CholGS overlap exactly singular: the plain Cholesky must fail on an
  // exactly-zero pivot, the diagonally-regularized retry must succeed, and
  // the cycle must still produce finite Ritz values.
  const fe::Mesh m = fe::make_uniform_mesh(3.0, 2, true);
  fe::DofHandler dofh(m, 3);
  Hamiltonian<double> H(dofh);
  H.set_potential(std::vector<double>(dofh.ndofs(), 0.0));
  ChebyshevFilteredSolver<double> solver(H, 6);
  solver.initialize_random(11);
  la::Matrix<double>& X = solver.subspace();
  for (index_t j = 1; j < X.cols(); ++j)
    std::copy(X.col(0), X.col(0) + X.rows(), X.col(j));
  const double retries_before =
      obs::MetricsRegistry::global().counter("chfes.cholesky_retries");
  ASSERT_NO_THROW(solver.cycle());
  EXPECT_GT(obs::MetricsRegistry::global().counter("chfes.cholesky_retries"), retries_before);
  ASSERT_EQ(solver.eigenvalues().size(), 6u);
  for (double ev : solver.eigenvalues()) EXPECT_TRUE(std::isfinite(ev)) << ev;
}

// ---------- SCF on exactly solvable systems ----------

TEST(Scf, NonInteractingHarmonicTrapTotalEnergy) {
  // Two non-interacting electrons (no Hartree, no XC) in a harmonic trap:
  // both occupy the 1.5 Ha level -> E = 3.0 Ha exactly.
  const double L = 10.0;
  const fe::Mesh m = fe::make_uniform_mesh(L, 4, false);
  fe::DofHandler dofh(m, 5);
  ScfOptions opt;
  opt.include_hartree = false;
  opt.temperature = 1e-3;
  opt.nstates = 6;
  opt.max_iterations = 25;
  opt.first_iteration_cycles = 6;
  KohnShamDFT<double> dft(dofh, nullptr, {}, opt);
  std::vector<double> v(dofh.ndofs());
  for (index_t g = 0; g < dofh.ndofs(); ++g) {
    const auto p = dofh.dof_point(g);
    const double r2 = (p[0] - L / 2) * (p[0] - L / 2) + (p[1] - L / 2) * (p[1] - L / 2) +
                      (p[2] - L / 2) * (p[2] - L / 2);
    v[g] = 0.5 * r2;
  }
  dft.set_external_potential(v, 2.0);
  const auto result = dft.solve();
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.energy.total, 3.0, 2e-3);
  EXPECT_NEAR(result.energy.band, 3.0, 2e-3);
  // The density integrates to the electron count.
  EXPECT_NEAR(dofh.integrate(dft.density()), 2.0, 1e-8);
}

TEST(Scf, LdaAtomInIsolatedBoxConverges) {
  // A single smeared "pseudo-atom" (Z = 4) with LDA: the SCF must converge
  // and produce bound occupied states below the Fermi level.
  const double L = 14.0;
  const fe::Mesh m = fe::make_uniform_mesh(L, 4, false);
  fe::DofHandler dofh(m, 4);
  ScfOptions opt;
  opt.temperature = 5e-3;
  opt.max_iterations = 40;
  opt.density_tol = 1e-6;
  KohnShamDFT<double> dft(dofh, std::make_shared<xc::LdaPW92>(), {}, opt);
  dft.set_nuclei({{{L / 2, L / 2, L / 2}, 4.0, 1.2}}, 4.0);
  const auto result = dft.solve();
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.energy.total, 0.0);  // bound system
  EXPECT_LT(dft.eigenvalues(0)[0], result.energy.fermi_level);
  // Residual history should be (roughly) decreasing.
  const auto& hist = result.residual_history;
  EXPECT_LT(hist.back(), hist.front());
  EXPECT_NEAR(dofh.integrate(dft.density()), 4.0, 1e-6);
}

TEST(Scf, FermiLevelHoldsElectronCount) {
  const double L = 10.0;
  const fe::Mesh m = fe::make_uniform_mesh(L, 3, false);
  fe::DofHandler dofh(m, 3);
  ScfOptions opt;
  opt.include_hartree = false;
  opt.nstates = 8;
  opt.temperature = 0.02;
  opt.max_iterations = 1;
  KohnShamDFT<double> dft(dofh, nullptr, {}, opt);
  std::vector<double> v(dofh.ndofs());
  for (index_t g = 0; g < dofh.ndofs(); ++g) {
    const auto p = dofh.dof_point(g);
    const double r2 = (p[0] - L / 2) * (p[0] - L / 2) + (p[1] - L / 2) * (p[1] - L / 2) +
                      (p[2] - L / 2) * (p[2] - L / 2);
    v[g] = 0.5 * r2;
  }
  dft.set_external_potential(v, 3.0);  // odd count -> fractional occupancy
  dft.solve();
  const double mu = dft.find_fermi_level();
  const auto f = dft.occupations(0, mu);
  double ne = 0.0;
  for (double fi : f) ne += fi;
  EXPECT_NEAR(ne, 3.0, 1e-6);
}


TEST(Scf, HellmannFeynmanForcesDimer) {
  // Symmetric dimer: forces are equal and opposite along the axis; their
  // magnitude matches a central finite difference of the total energy.
  const double L = 12.0;
  const fe::Mesh m = fe::make_uniform_mesh(L, 4, false);
  fe::DofHandler dofh(m, 4);
  auto run = [&](double half_sep, std::vector<std::array<double, 3>>* force) {
    ScfOptions opt;
    opt.temperature = 0.01;
    opt.max_iterations = 40;
    opt.density_tol = 1e-8;
    KohnShamDFT<double> dft(dofh, std::make_shared<xc::LdaPW92>(), {}, opt);
    dft.set_nuclei({{{L / 2 - half_sep, L / 2, L / 2}, 2.0, 1.1},
                    {{L / 2 + half_sep, L / 2, L / 2}, 2.0, 1.1}},
                   4.0);
    const auto res = dft.solve();
    EXPECT_TRUE(res.converged);
    if (force) *force = dft.forces();
    return res.energy.total;
  };
  std::vector<std::array<double, 3>> F;
  const double h = 0.05;
  const double e0 = run(2.4, &F);
  (void)e0;
  // Opposite forces, purely axial by symmetry.
  EXPECT_NEAR(F[0][0], -F[1][0], 5e-4);
  EXPECT_NEAR(F[0][1], 0.0, 5e-4);
  EXPECT_NEAR(F[0][2], 0.0, 5e-4);
  // Finite-difference check: E(d + h) vs E(d - h) where d = separation;
  // moving both nuclei symmetrically changes E by -2 F_x(atom 2) * h ...
  const double ep = run(2.4 + h / 2, nullptr);
  const double em = run(2.4 - h / 2, nullptr);
  // Central difference wrt the *half*-separation: moving both nuclei apart
  // by dR each changes E by (dE/dR2x - dE/dR1x) dR = -2 F2x dR.
  const double dEdhalf = (ep - em) / h;
  EXPECT_NEAR(dEdhalf, -2.0 * F[1][0], 0.15 * std::abs(dEdhalf) + 2e-3);
}

namespace {
/// Harmonic trap potential centered in an [0, L]^3 box.
std::vector<double> trap_potential(const fe::DofHandler& dofh, double L) {
  std::vector<double> v(dofh.ndofs());
  for (index_t g = 0; g < dofh.ndofs(); ++g) {
    const auto p = dofh.dof_point(g);
    v[g] = 0.5 * ((p[0] - L / 2) * (p[0] - L / 2) + (p[1] - L / 2) * (p[1] - L / 2) +
                  (p[2] - L / 2) * (p[2] - L / 2));
  }
  return v;
}
}  // namespace

TEST(Scf, AndersonHistoryTruncatesAtMaxDepth) {
  // anderson_depth bounds the mixing history ring: the per-iteration
  // "scf.anderson_depth" series must climb 0, 1, ... and then saturate at
  // the configured depth once the ring starts erasing its oldest entry.
  const double L = 10.0;
  const fe::Mesh m = fe::make_uniform_mesh(L, 3, false);
  fe::DofHandler dofh(m, 3);
  ScfOptions opt;
  opt.include_hartree = false;
  opt.nstates = 6;
  opt.anderson_depth = 2;
  opt.max_iterations = 6;
  opt.density_tol = 1e-16;  // unreachable: every iteration mixes
  KohnShamDFT<double> dft(dofh, nullptr, {}, opt);
  dft.set_external_potential(trap_potential(dofh, L), 2.0);
  const std::size_t before =
      obs::MetricsRegistry::global().series("scf.anderson_depth").size();
  dft.solve();
  const auto s = obs::MetricsRegistry::global().series("scf.anderson_depth");
  ASSERT_EQ(s.size(), before + 6);
  EXPECT_EQ(s[before + 0], 0.0);
  EXPECT_EQ(s[before + 1], 1.0);
  for (std::size_t i = before + 2; i < s.size(); ++i)
    EXPECT_EQ(s[i], 2.0) << "history exceeded anderson_depth at iteration " << i - before;
}

TEST(Scf, FermiBisectionHandlesDegenerateShell) {
  // Four electrons in the harmonic trap: two fill the s level, the other two
  // spread fractionally (2/3 each) over the threefold-degenerate p shell.
  // The 200-step bisection must pin mu inside the degenerate level and hold
  // the electron count to bisection precision even though count(mu) is
  // nearly flat between shells and jumps steeply across the p level.
  const double L = 10.0;
  const fe::Mesh m = fe::make_uniform_mesh(L, 3, false);
  fe::DofHandler dofh(m, 3);
  ScfOptions opt;
  opt.include_hartree = false;
  opt.nstates = 8;
  opt.temperature = 0.01;
  opt.max_iterations = 1;
  KohnShamDFT<double> dft(dofh, nullptr, {}, opt);
  dft.set_external_potential(trap_potential(dofh, L), 4.0);
  dft.solve();
  const double mu = dft.find_fermi_level();
  const auto f = dft.occupations(0, mu);
  double ne = 0.0;
  for (double fi : f) ne += fi;
  EXPECT_NEAR(ne, 4.0, 1e-6);
  EXPECT_NEAR(f[0], 2.0, 1e-2);  // filled s shell
  // The cubic discretization preserves the p degeneracy, so the three
  // fractional occupancies must come out (nearly) equal.
  for (int i = 1; i <= 3; ++i) EXPECT_NEAR(f[i], 2.0 / 3.0, 0.05) << "p state " << i;
  const auto& ev = dft.eigenvalues(0);
  EXPECT_GT(mu, ev[0]);
  EXPECT_LT(mu, ev[4]);
}

TEST(Scf, CholeskyRetryEngagesInsideFullScf) {
  // An overdriven Chebyshev degree collapses the filtered block toward the
  // dominant eigendirections within a single filter application, making the
  // CholGS Gram numerically singular *inside solve()* (not via a hand-
  // corrupted subspace as in CholeskyBreakdownRegularizationRetry): the
  // regularized retry must engage and the SCF must still land on the
  // healthy trajectory's energy.
  const double L = 10.0;
  const fe::Mesh m = fe::make_uniform_mesh(L, 3, false);
  fe::DofHandler dofh(m, 3);
  auto run = [&](int degree) {
    ScfOptions opt;
    opt.include_hartree = false;
    opt.nstates = 6;
    opt.cheb_degree = degree;
    opt.max_iterations = 2;
    opt.first_iteration_cycles = 2;
    opt.density_tol = 1e-16;
    KohnShamDFT<double> dft(dofh, nullptr, {}, opt);
    dft.set_external_potential(trap_potential(dofh, L), 2.0);
    return dft.solve();
  };
  auto& metrics = obs::MetricsRegistry::global();
  const double before = metrics.counter("chfes.cholesky_retries");
  const auto healthy = run(30);
  EXPECT_EQ(metrics.counter("chfes.cholesky_retries"), before)
      << "reference degree unexpectedly triggered a retry";
  const auto overdriven = run(160);
  EXPECT_GT(metrics.counter("chfes.cholesky_retries"), before);
  EXPECT_TRUE(std::isfinite(overdriven.energy.total));
  EXPECT_NEAR(overdriven.energy.total, healthy.energy.total, 1e-5);
}

TEST(Scf, PeriodicElectronGasIsUniform) {
  // Jellium-like check: smeared charge spread uniformly -> uniform density.
  const double L = 6.0;
  const fe::Mesh m = fe::make_uniform_mesh(L, 3, true);
  fe::DofHandler dofh(m, 3);
  ScfOptions opt;
  opt.temperature = 0.02;
  opt.max_iterations = 30;
  opt.nstates = 12;
  KohnShamDFT<double> dft(dofh, std::make_shared<xc::LdaPW92>(), {}, opt);
  // A "nucleus" smeared so wide it is essentially a uniform background.
  dft.set_nuclei({{{L / 2, L / 2, L / 2}, 4.0, 6.0}}, 4.0);
  const auto result = dft.solve();
  (void)result;
  const auto& rho = dft.density();
  const double mean = dofh.integrate(rho) / dofh.mesh().volume();
  for (index_t g = 0; g < dofh.ndofs(); g += 37)
    EXPECT_NEAR(rho[g], mean, 0.4 * mean);
}

}  // namespace
}  // namespace dftfe::ks
