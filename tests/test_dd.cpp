// Tests for the domain-decomposition layer: slab partitioning, interface
// bookkeeping, FP64/FP32 wire exchanges (byte accounting, rounding behavior),
// asynchronous overlap, and the halo mailbox's documented edge semantics
// (idempotent close, repeatable reset, zero-capacity packets). The mailbox's
// full concurrency protocol is model-checked in tests/test_model_check.cpp;
// here the edges are pinned single-threaded so the contract holds even where
// the checker's scenarios never push a schedule.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dd/exchange.hpp"
#include "dd/mailbox.hpp"
#include "dd/pipeline.hpp"
#include "dd/partition.hpp"
#include "fe/dofs.hpp"
#include "fe/mesh.hpp"

namespace dftfe::dd {
namespace {

fe::Mesh test_mesh(bool periodic) { return fe::make_uniform_mesh(4.0, 3, periodic); }

TEST(SlabPartition, CoversAllPlanesWithoutOverlap) {
  const auto mesh = test_mesh(false);
  fe::DofHandler dofh(mesh, 3);
  for (int nranks : {1, 2, 3, 4, 7}) {
    SlabPartition part(dofh, nranks);
    index_t covered = 0;
    for (int r = 0; r < part.nranks(); ++r) {
      const Slab& s = part.slab(r);
      EXPECT_LE(s.z_begin, s.z_end);
      covered += s.z_end - s.z_begin;
      if (r > 0) {
        EXPECT_EQ(part.slab(r - 1).z_end, s.z_begin);
      }
    }
    EXPECT_EQ(covered, part.nplanes());
  }
}

TEST(SlabPartition, InterfaceCountMatchesRankCount) {
  const auto mesh = test_mesh(false);
  fe::DofHandler dofh(mesh, 3);
  SlabPartition part(dofh, 4);
  EXPECT_EQ(part.interface_planes().size(), 3u);  // nranks - 1, non-periodic
  const auto pmesh = test_mesh(true);
  fe::DofHandler pdofh(pmesh, 3);
  SlabPartition ppart(pdofh, 4);
  EXPECT_EQ(ppart.interface_planes().size(), 4u);  // + periodic wrap
}

TEST(SlabPartition, MoreRanksThanPlanesIsClamped) {
  const auto mesh = test_mesh(false);
  fe::DofHandler dofh(mesh, 2);  // 7 planes
  SlabPartition part(dofh, 100);
  EXPECT_LE(part.nranks(), static_cast<int>(part.nplanes()));
  for (int r = 0; r < part.nranks(); ++r)
    EXPECT_GE(part.slab(r).z_end - part.slab(r).z_begin, 1);
}

TEST(SlabPartition, PlaneRangesAreContiguous) {
  const auto mesh = test_mesh(true);
  fe::DofHandler dofh(mesh, 3);
  SlabPartition part(dofh, 3);
  const auto [lo, hi] = part.plane_range(2);
  EXPECT_EQ(lo, 2 * part.plane_size());
  EXPECT_EQ(hi - lo, part.plane_size());
  EXPECT_EQ(part.plane_size(), dofh.naxis(0) * dofh.naxis(1));
}

TEST(SlabPartitionCellAligned, SlabsLandOnCellLayerBoundaries) {
  for (const bool periodic : {false, true}) {
    const auto mesh = fe::make_uniform_mesh(4.0, 5, periodic);
    const fe::DofHandler dofh(mesh, 3);
    for (const int nranks : {1, 2, 3, 5}) {
      const auto part = SlabPartition::cell_aligned(dofh, nranks);
      ASSERT_EQ(part.nranks(), nranks);
      EXPECT_TRUE(part.cell_aligned_slabs());
      // Cell layers [c_begin, c_end) tile [0, ncz) in order; the dof plane
      // range is the cell range scaled by the element degree, with the last
      // rank of a non-periodic axis owning the closing plane.
      index_t c = 0, z = 0;
      for (int r = 0; r < part.nranks(); ++r) {
        const Slab& s = part.slab(r);
        EXPECT_EQ(s.c_begin, c);
        EXPECT_GT(s.c_end, s.c_begin);
        EXPECT_EQ(s.z_begin, z);
        EXPECT_EQ(s.z_begin, s.c_begin * dofh.degree());
        const index_t z_expect = (r == part.nranks() - 1) ? part.nplanes()
                                                          : s.c_end * dofh.degree();
        EXPECT_EQ(s.z_end, z_expect);
        c = s.c_end;
        z = s.z_end;
      }
      EXPECT_EQ(c, mesh.ncells(2));
      EXPECT_EQ(z, part.nplanes());
      const std::size_t expect_ifaces =
          static_cast<std::size_t>(nranks - 1) + ((periodic && nranks > 1) ? 1 : 0);
      EXPECT_EQ(part.interface_planes().size(), expect_ifaces);
    }
  }
}

TEST(SlabPartitionCellAligned, RanksClampToCellLayers) {
  const auto mesh = fe::make_uniform_mesh(4.0, 3, false);
  const fe::DofHandler dofh(mesh, 4);
  const auto part = SlabPartition::cell_aligned(dofh, 8);
  EXPECT_EQ(part.nranks(), 3);  // at most one lane per z cell layer
  for (int r = 0; r < part.nranks(); ++r)
    EXPECT_EQ(part.slab(r).c_end - part.slab(r).c_begin, 1);
  EXPECT_EQ(part.slab(2).z_end, part.nplanes());
}

TEST(BrickPartition, BricksTileCellGridDisjointly) {
  for (const bool periodic : {false, true}) {
    const auto mesh = fe::make_uniform_mesh(4.0, 4, periodic);
    const fe::DofHandler dofh(mesh, 3);
    for (const std::array<int, 3> grid : {std::array<int, 3>{2, 2, 1},
                                          std::array<int, 3>{2, 1, 2},
                                          std::array<int, 3>{2, 2, 2},
                                          std::array<int, 3>{4, 1, 1},
                                          std::array<int, 3>{1, 3, 2}}) {
      const auto part = BrickPartition::cell_aligned(dofh, grid);
      ASSERT_EQ(part.nranks(), grid[0] * grid[1] * grid[2]);
      EXPECT_EQ(part.grid(), grid);
      // Per axis, the bricks of each grid line tile [0, ncells) in order,
      // cell-aligned by construction (ranges are in cells, not dof planes).
      for (int r = 0; r < part.nranks(); ++r) {
        const auto c = part.coords(r);
        EXPECT_EQ(part.rank_of(c[0], c[1], c[2]), r);
        const Brick& b = part.brick(r);
        for (int a = 0; a < 3; ++a) {
          EXPECT_GT(b.c_end[a], b.c_begin[a]);
          // Neighbors along axis a share the boundary exactly.
          if (c[a] + 1 < grid[a]) {
            auto nc = c;
            ++nc[a];
            const Brick& nb = part.brick(part.rank_of(nc[0], nc[1], nc[2]));
            EXPECT_EQ(b.c_end[a], nb.c_begin[a]);
          } else {
            EXPECT_EQ(b.c_end[a], part.ncells(a));
          }
          if (c[a] == 0) {
            EXPECT_EQ(b.c_begin[a], 0);
          }
        }
      }
      // Total cell volume of the bricks equals the mesh volume (disjoint
      // per-axis ranges + the tiling above make this a partition).
      index_t vol = 0;
      for (int r = 0; r < part.nranks(); ++r) {
        const Brick& b = part.brick(r);
        vol += (b.c_end[0] - b.c_begin[0]) * (b.c_end[1] - b.c_begin[1]) *
               (b.c_end[2] - b.c_begin[2]);
      }
      EXPECT_EQ(vol, part.ncells(0) * part.ncells(1) * part.ncells(2));
    }
  }
}

TEST(BrickPartition, DegenerateZGridMatchesCellAlignedSlabs) {
  const auto mesh = fe::make_uniform_mesh(4.0, 5, false);
  const fe::DofHandler dofh(mesh, 3);
  for (const int n : {1, 2, 3, 5}) {
    const auto slab = SlabPartition::cell_aligned(dofh, n);
    const auto brick = BrickPartition::cell_aligned(dofh, {1, 1, n});
    ASSERT_EQ(brick.nranks(), slab.nranks());
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(brick.brick(r).c_begin[2], slab.slab(r).c_begin);
      EXPECT_EQ(brick.brick(r).c_end[2], slab.slab(r).c_end);
      EXPECT_EQ(brick.brick(r).c_begin[0], 0);
      EXPECT_EQ(brick.brick(r).c_end[0], mesh.ncells(0));
    }
  }
}

TEST(BrickPartition, GridClampsPerAxisToCellCount) {
  const auto mesh = fe::make_uniform_mesh(4.0, 3, false);  // 3 cells per axis
  const fe::DofHandler dofh(mesh, 3);
  const auto part = BrickPartition::cell_aligned(dofh, {8, 2, 1});
  EXPECT_EQ(part.grid()[0], 3);  // clamped: at most one lane per cell
  EXPECT_EQ(part.grid()[1], 2);
  EXPECT_EQ(part.nranks(), 6);
}

TEST(BrickPartition, FactorizeMinimizesSurfaceOnCube) {
  const auto mesh = fe::make_uniform_mesh(4.0, 4, false);
  const fe::DofHandler dofh(mesh, 3);
  // Small counts reproduce the historical slab/pencil layouts; 8 goes full
  // 3D. Ties break toward z-major so existing slab configs stay stable.
  EXPECT_EQ(BrickPartition::factorize(dofh, 1), (std::array<int, 3>{1, 1, 1}));
  EXPECT_EQ(BrickPartition::factorize(dofh, 2), (std::array<int, 3>{1, 1, 2}));
  EXPECT_EQ(BrickPartition::factorize(dofh, 3), (std::array<int, 3>{1, 1, 3}));
  EXPECT_EQ(BrickPartition::factorize(dofh, 4), (std::array<int, 3>{1, 2, 2}));
  EXPECT_EQ(BrickPartition::factorize(dofh, 8), (std::array<int, 3>{2, 2, 2}));
}

TEST(BrickPartition, FactorizePrefersLongAxisOnElongatedBox) {
  // 4 lanes on a box with many z cells and few x/y cells: cutting z four
  // times moves less surface than any 2x2 pencil.
  const fe::Mesh mesh(fe::make_uniform_axis(2.0, 2), fe::make_uniform_axis(2.0, 2),
                      fe::make_uniform_axis(16.0, 16));
  const fe::DofHandler dofh(mesh, 2);
  EXPECT_EQ(BrickPartition::factorize(dofh, 4), (std::array<int, 3>{1, 1, 4}));
}

TEST(BrickPartition, NeighborWrapsOnlyPeriodicAxes) {
  const auto mesh = fe::make_uniform_mesh(4.0, 4, false);
  const fe::DofHandler dofh(mesh, 3);
  const auto part = BrickPartition::cell_aligned(dofh, {2, 2, 2});
  // Corner rank 0 = (0,0,0): negative steps leave the non-periodic box.
  EXPECT_EQ(part.neighbor(0, -1, 0, 0), -1);
  EXPECT_EQ(part.neighbor(0, 0, -1, 0), -1);
  EXPECT_EQ(part.neighbor(0, -1, -1, -1), -1);
  EXPECT_EQ(part.neighbor(0, 1, 0, 0), 1);
  EXPECT_EQ(part.neighbor(0, 1, 1, 1), 7);

  const auto pmesh = fe::make_uniform_mesh(4.0, 4, true);
  const fe::DofHandler pdofh(pmesh, 3);
  const auto ppart = BrickPartition::cell_aligned(pdofh, {2, 2, 2});
  EXPECT_EQ(ppart.neighbor(0, -1, 0, 0), 1);     // wraps in x
  EXPECT_EQ(ppart.neighbor(0, -1, -1, -1), 7);   // wraps on all three
  // A periodic axis with a single brick wraps to itself (self-exchange).
  const auto single = BrickPartition::cell_aligned(pdofh, {1, 1, 2});
  EXPECT_EQ(single.neighbor(0, 1, 0, 0), 0);
  EXPECT_EQ(single.neighbor(0, 0, 0, -1), 1);
}

TEST(Pipeline, TreeAllreduceBeatsFlatBeyondTwoRanks) {
  const double mt = 1.0e-3;
  EXPECT_DOUBLE_EQ(allreduce_flat_time(mt, 1), 0.0);
  EXPECT_DOUBLE_EQ(allreduce_tree_time(mt, 1), 0.0);
  EXPECT_DOUBLE_EQ(allreduce_flat_time(mt, 2), allreduce_tree_time(mt, 2));
  EXPECT_DOUBLE_EQ(allreduce_flat_time(mt, 8), 7.0 * mt);
  EXPECT_DOUBLE_EQ(allreduce_tree_time(mt, 8), 3.0 * mt);
  EXPECT_DOUBLE_EQ(allreduce_tree_time(mt, 5), 3.0 * mt);  // ceil(log2(5))
  EXPECT_DOUBLE_EQ(allreduce_tree_time(mt, 3), allreduce_flat_time(mt, 3));  // tie
  for (int r = 4; r <= 64; ++r)
    EXPECT_LT(allreduce_tree_time(mt, r), allreduce_flat_time(mt, r));
}

TEST(BoundaryExchange, Fp64WireIsLossless) {
  const auto mesh = test_mesh(false);
  fe::DofHandler dofh(mesh, 3);
  SlabPartition part(dofh, 3);
  BoundaryExchange<double> ex(part, Wire::fp64);
  la::Matrix<double> X(dofh.ndofs(), 4);
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.37 * i) * 1e3;
  la::Matrix<double> X0 = X;
  ex.exchange(X);
  EXPECT_EQ(la::max_abs_diff(X, X0), 0.0);
  EXPECT_GT(ex.stats().bytes, 0);
  EXPECT_EQ(ex.stats().messages, 2 * 2);  // 2 interfaces, send+recv each
}

TEST(BoundaryExchange, Fp32WireRoundsOnlyInterfacePlanes) {
  const auto mesh = test_mesh(false);
  fe::DofHandler dofh(mesh, 3);
  SlabPartition part(dofh, 2);
  BoundaryExchange<double> ex(part, Wire::fp32);
  la::Matrix<double> X(dofh.ndofs(), 3);
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.37 * i) * 1e3;
  la::Matrix<double> X0 = X;
  ex.exchange(X);
  // Interface plane entries are FP32-rounded...
  const index_t z = part.interface_planes()[0];
  const auto [lo, hi] = part.plane_range(z);
  double max_rel = 0.0;
  bool any_changed = false;
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = lo; i < hi; ++i) {
      if (X(i, j) != X0(i, j)) any_changed = true;
      max_rel = std::max(max_rel, std::abs(X(i, j) - X0(i, j)) /
                                      std::max(1.0, std::abs(X0(i, j))));
    }
  EXPECT_TRUE(any_changed);
  EXPECT_LT(max_rel, 1e-6);  // FP32 epsilon-level rounding, no worse
  // ...and everything outside interface planes is untouched.
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < lo; ++i) EXPECT_EQ(X(i, j), X0(i, j));
}

TEST(BoundaryExchange, Fp32WireEntriesAreExactFloatRoundTrips) {
  // The FP32 wire stages data in a typed float buffer (regression: it used
  // to reinterpret a raw byte buffer's storage as floats, which is
  // object-lifetime UB), so every retransmitted interface entry must equal
  // exactly one double -> float -> double conversion of the original value.
  const auto mesh = test_mesh(false);
  fe::DofHandler dofh(mesh, 3);
  SlabPartition part(dofh, 3);
  BoundaryExchange<double> ex(part, Wire::fp32);
  la::Matrix<double> X(dofh.ndofs(), 2);
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::cos(0.61 * i) * 3.7e2;
  la::Matrix<double> X0 = X;
  ex.exchange(X);
  for (index_t z : part.interface_planes()) {
    const auto [lo, hi] = part.plane_range(z);
    for (index_t j = 0; j < X.cols(); ++j)
      for (index_t i = lo; i < hi; ++i)
        EXPECT_EQ(X(i, j), static_cast<double>(static_cast<float>(X0(i, j)))) << i << "," << j;
  }
}

TEST(BoundaryExchange, Fp32HalvesWireBytes) {
  const auto mesh = test_mesh(false);
  fe::DofHandler dofh(mesh, 3);
  SlabPartition part(dofh, 3);
  BoundaryExchange<double> ex64(part, Wire::fp64);
  BoundaryExchange<double> ex32(part, Wire::fp32);
  la::Matrix<double> X(dofh.ndofs(), 8);
  ex64.exchange(X);
  ex32.exchange(X);
  EXPECT_EQ(ex64.stats().bytes, 2 * ex32.stats().bytes);
}

TEST(BoundaryExchange, ComplexWireSupported) {
  const auto mesh = test_mesh(true);
  fe::DofHandler dofh(mesh, 2);
  SlabPartition part(dofh, 2);
  BoundaryExchange<complex_t> ex(part, Wire::fp32);
  la::Matrix<complex_t> X(dofh.ndofs(), 2);
  for (index_t i = 0; i < X.size(); ++i)
    X.data()[i] = complex_t(std::sin(0.1 * i), std::cos(0.2 * i));
  la::Matrix<complex_t> X0 = X;
  ex.exchange(X);
  EXPECT_LT(la::max_abs_diff(X, X0), 1e-6);
}

TEST(BoundaryExchange, ModeledTimeMatchesInterconnectModel) {
  const auto mesh = test_mesh(false);
  fe::DofHandler dofh(mesh, 4);
  SlabPartition part(dofh, 4);
  CommModel model;
  model.bandwidth_bytes_per_s = 1e8;
  model.latency_s = 1e-5;
  BoundaryExchange<double> ex(part, Wire::fp64, model);
  la::Matrix<double> X(dofh.ndofs(), 16);
  const double modeled = ex.exchange(X);
  EXPECT_NEAR(modeled,
              ex.stats().messages * model.latency_s +
                  static_cast<double>(ex.stats().bytes) / model.bandwidth_bytes_per_s,
              1e-12);
  EXPECT_DOUBLE_EQ(modeled, ex.stats().modeled_seconds);
}

TEST(CommModelTest, AllreduceScalesLogarithmically) {
  CommModel model;
  model.bandwidth_bytes_per_s = 1e9;
  model.latency_s = 1e-6;
  EXPECT_DOUBLE_EQ(model.allreduce_time(1000, 1), 0.0);
  const double t2 = model.allreduce_time(1000, 2);
  const double t8 = model.allreduce_time(1000, 8);
  const double t1024 = model.allreduce_time(1000, 1024);
  EXPECT_NEAR(t8, 3.0 * t2, 1e-12);
  EXPECT_NEAR(t1024, 10.0 * t2, 1e-12);
}

TEST(Pipeline, SyncIsSumOfComputeAndComm) {
  std::vector<BlockTiming> blocks{{1.0, 0.5}, {2.0, 0.5}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(simulate_sync(blocks), 6.0);
}

TEST(Pipeline, OverlapHidesCommBehindCompute) {
  // Comm always shorter than the next block's compute: only the last
  // exchange is exposed.
  std::vector<BlockTiming> blocks{{1.0, 0.4}, {1.0, 0.4}, {1.0, 0.4}};
  EXPECT_DOUBLE_EQ(simulate_overlap(blocks), 3.4);
  EXPECT_DOUBLE_EQ(simulate_sync(blocks), 4.2);
}

TEST(Pipeline, CommBoundScheduleSerializesOnCommLane) {
  // Comm dominates: the comm lane is the bottleneck after the first compute.
  std::vector<BlockTiming> blocks{{0.1, 1.0}, {0.1, 1.0}, {0.1, 1.0}};
  EXPECT_DOUBLE_EQ(simulate_overlap(blocks), 0.1 + 3.0);
}

TEST(Pipeline, OverlapNeverSlowerThanSyncNorFasterThanBounds) {
  std::vector<BlockTiming> blocks;
  for (int k = 0; k < 20; ++k)
    blocks.push_back({0.1 + 0.05 * (k % 3), 0.02 + 0.07 * (k % 5)});
  const double sync = simulate_sync(blocks);
  const double async = simulate_overlap(blocks);
  double csum = 0.0, msum = 0.0;
  for (auto& b : blocks) {
    csum += b.compute;
    msum += b.comm;
  }
  EXPECT_LE(async, sync + 1e-12);
  EXPECT_GE(async, std::max(csum, msum) - 1e-12);
}

// --- HaloChannel edge semantics (single-threaded; see mailbox.hpp header) ---

/// Post one packet carrying `v` and consume it, asserting the payload.
void roundtrip_packet(HaloChannel<double>& ch, double v) {
  const int s = ch.begin_post();
  ch.buf64(s)[0] = v;
  ch.finish_post(s, HaloChannel<double>::Clock::now());
  const int r = ch.wait_packet();
  EXPECT_EQ(ch.cbuf64(r)[0], v);
  ch.release(r);
}

TEST(HaloChannelEdge, ResetTwiceYieldsFreshChannelEachTime) {
  HaloChannel<double> ch;
  ch.init(Wire::fp64, 1);
  roundtrip_packet(ch, 1.5);
  ch.reset();
  ch.reset();  // second reset of an already-fresh channel must be a no-op
  roundtrip_packet(ch, 2.5);
  // reset() with a packet still in flight drops it: the slot is reclaimable
  // by the sender immediately and nothing is left to receive.
  const int s = ch.begin_post();
  ch.finish_post(s, HaloChannel<double>::Clock::now());
  ch.reset();
  roundtrip_packet(ch, 3.5);
}

TEST(HaloChannelEdge, CloseIsIdempotentAndResetClearsPoison) {
  HaloChannel<double> ch;
  ch.init(Wire::fp64, 1);
  ch.close();
  EXPECT_NO_THROW(ch.close());  // documented: closing a closed channel is a no-op
  EXPECT_THROW(ch.begin_post(), std::runtime_error);
  EXPECT_THROW(ch.wait_packet(), std::runtime_error);
  EXPECT_NO_THROW(ch.close());  // still idempotent after poisoned calls
  ch.reset();
  roundtrip_packet(ch, 4.5);  // poison cleared: full protocol works again
}

TEST(HaloChannelEdge, ZeroCapacityChannelRunsFullProtocol) {
  HaloChannel<double> ch;
  ch.init(Wire::fp64, 0);  // legal: empty payloads, the protocol still runs
  for (int step = 0; step < 3; ++step) {
    const int s = ch.begin_post();
    ch.finish_post(s, HaloChannel<double>::Clock::now());
    const int r = ch.wait_packet();
    EXPECT_EQ(r, s);
    ch.release(r);
  }
  ch.close();
  EXPECT_THROW(ch.wait_packet(), std::runtime_error);
}

}  // namespace
}  // namespace dftfe::dd
