// Tests for the dense linear algebra substrate: GEMM (all op combinations,
// real and complex, parameterized size sweeps), strided-batched GEMM,
// Cholesky + triangular inversion, Hermitian eigensolvers, PCG, block MINRES
// with per-column shifts, Lanczos spectrum bounds, mixed-precision kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "base/flops.hpp"
#include "base/rng.hpp"
#include "la/batched.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eig.hpp"
#include "la/iterative.hpp"
#include "la/mixed.hpp"

namespace dftfe::la {
namespace {

template <class T>
T random_scalar(Rng& rng) {
  if constexpr (scalar_traits<T>::is_complex) {
    return T(rng.uniform(-1, 1), rng.uniform(-1, 1));
  } else {
    return T(rng.uniform(-1, 1));
  }
}

template <class T>
Matrix<T> random_matrix(index_t m, index_t n, Rng& rng) {
  Matrix<T> A(m, n);
  for (index_t i = 0; i < A.size(); ++i) A.data()[i] = random_scalar<T>(rng);
  return A;
}

// Reference GEMM: naive triple loop, trusted by inspection.
template <class T>
void gemm_ref(char ta, char tb, T alpha, const Matrix<T>& A, const Matrix<T>& B, T beta,
              Matrix<T>& C) {
  const index_t m = C.rows(), n = C.cols();
  const index_t k = (ta == 'N') ? A.cols() : A.rows();
  auto a = [&](index_t i, index_t kk) {
    if (ta == 'N') return A(i, kk);
    if (ta == 'T') return A(kk, i);
    return scalar_traits<T>::conj(A(kk, i));
  };
  auto b = [&](index_t kk, index_t j) {
    if (tb == 'N') return B(kk, j);
    if (tb == 'T') return B(j, kk);
    return scalar_traits<T>::conj(B(j, kk));
  };
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T s{};
      for (index_t kk = 0; kk < k; ++kk) s += a(i, kk) * b(kk, j);
      C(i, j) = alpha * s + beta * C(i, j);
    }
}

template <class T>
Matrix<T> random_hermitian(index_t n, Rng& rng) {
  Matrix<T> A = random_matrix<T>(n, n, rng);
  Matrix<T> H(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      H(i, j) = (A(i, j) + scalar_traits<T>::conj(A(j, i))) * T(0.5);
  return H;
}

template <class T>
Matrix<T> random_spd(index_t n, Rng& rng) {
  Matrix<T> B = random_matrix<T>(n, n, rng);
  Matrix<T> A(n, n);
  gemm('C', 'N', T(1), B, B, T(0), A);
  for (index_t i = 0; i < n; ++i) A(i, i) += T(static_cast<double>(n));
  return A;
}

// ---------- GEMM: parameterized sweep over shapes and op combinations ----------

using GemmParam = std::tuple<int, int, int, char, char>;

class GemmSweep : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmSweep, MatchesReferenceReal) {
  auto [m, n, k, ta, tb] = GetParam();
  Rng rng(42 + m + 7 * n + 13 * k + ta + tb);
  Matrix<double> A = random_matrix<double>(ta == 'N' ? m : k, ta == 'N' ? k : m, rng);
  Matrix<double> B = random_matrix<double>(tb == 'N' ? k : n, tb == 'N' ? n : k, rng);
  Matrix<double> C = random_matrix<double>(m, n, rng);
  Matrix<double> Cref = C;
  const double alpha = 1.3, beta = -0.7;
  gemm(ta, tb, alpha, A, B, beta, C);
  gemm_ref(ta, tb, alpha, A, B, beta, Cref);
  EXPECT_LT(max_abs_diff(C, Cref), 1e-11 * k) << "m=" << m << " n=" << n << " k=" << k;
}

TEST_P(GemmSweep, MatchesReferenceComplex) {
  auto [m, n, k, ta, tb] = GetParam();
  Rng rng(99 + m + 7 * n + 13 * k + ta + tb);
  Matrix<complex_t> A = random_matrix<complex_t>(ta == 'N' ? m : k, ta == 'N' ? k : m, rng);
  Matrix<complex_t> B = random_matrix<complex_t>(tb == 'N' ? k : n, tb == 'N' ? n : k, rng);
  Matrix<complex_t> C = random_matrix<complex_t>(m, n, rng);
  Matrix<complex_t> Cref = C;
  const complex_t alpha(0.8, -0.4), beta(0.2, 0.9);
  gemm(ta, tb, alpha, A, B, beta, C);
  gemm_ref(ta, tb, alpha, A, B, beta, Cref);
  EXPECT_LT(max_abs_diff(C, Cref), 1e-11 * k);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndOps, GemmSweep,
    ::testing::Combine(::testing::Values(1, 7, 33, 130), ::testing::Values(1, 5, 97),
                       ::testing::Values(1, 17, 201), ::testing::Values('N', 'T', 'C'),
                       ::testing::Values('N', 'T', 'C')));

TEST(Gemm, BetaZeroOverwritesUninitializedC) {
  Rng rng(7);
  Matrix<double> A = random_matrix<double>(11, 5, rng);
  Matrix<double> B = random_matrix<double>(5, 9, rng);
  Matrix<double> C(11, 9);
  for (index_t i = 0; i < C.size(); ++i) C.data()[i] = std::nan("");
  gemm('N', 'N', 1.0, A, B, 0.0, C);
  for (index_t i = 0; i < C.size(); ++i) EXPECT_FALSE(std::isnan(C.data()[i]));
}

TEST(Gemm, AlphaZeroScalesOnly) {
  Rng rng(8);
  Matrix<double> A = random_matrix<double>(6, 6, rng);
  Matrix<double> B = random_matrix<double>(6, 6, rng);
  Matrix<double> C = random_matrix<double>(6, 6, rng);
  Matrix<double> Cref = C;
  gemm('N', 'N', 0.0, A, B, 2.0, C);
  for (index_t i = 0; i < C.size(); ++i)
    EXPECT_DOUBLE_EQ(C.data()[i], 2.0 * Cref.data()[i]);
}

TEST(Gemm, CountsAnalyticFlops) {
  auto& fc = FlopCounter::global();
  fc.clear();
  Rng rng(9);
  Matrix<double> A = random_matrix<double>(10, 20, rng);
  Matrix<double> B = random_matrix<double>(20, 30, rng);
  Matrix<double> C(10, 30);
  gemm('N', 'N', 1.0, A, B, 0.0, C);
  EXPECT_DOUBLE_EQ(fc.total(), 2.0 * 10 * 30 * 20);
  fc.clear();
  Matrix<complex_t> Az = random_matrix<complex_t>(4, 4, rng);
  Matrix<complex_t> Cz(4, 4);
  gemm('N', 'N', complex_t(1), Az, Az, complex_t(0), Cz);
  EXPECT_DOUBLE_EQ(fc.total(), 4.0 * 2.0 * 4 * 4 * 4);
  fc.clear();
}

// ---------- level-1 helpers ----------

TEST(Level1, DotcConjugatesFirstArgument) {
  std::vector<complex_t> x{{1, 2}}, y{{3, -1}};
  const complex_t d = dotc(1, x.data(), y.data());
  EXPECT_DOUBLE_EQ(d.real(), (std::conj(x[0]) * y[0]).real());
  EXPECT_DOUBLE_EQ(d.imag(), (std::conj(x[0]) * y[0]).imag());
}

TEST(Level1, Nrm2MatchesDefinition) {
  std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(nrm2(2, x.data()), 5.0);
  std::vector<complex_t> z{{3, 4}};
  EXPECT_DOUBLE_EQ(nrm2(1, z.data()), 5.0);
}

TEST(Level1, AxpyAndScal) {
  std::vector<double> x{1, 2, 3}, y{10, 20, 30};
  axpy<double>(3, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[2], 36.0);
  scal<double>(3, 0.5, y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

// ---------- batched GEMM ----------

TEST(BatchedGemm, MatchesLoopOfGemms) {
  Rng rng(21);
  const index_t m = 9, n = 12, k = 9, batch = 17;
  std::vector<double> A(m * k * batch), B(k * n * batch), C(m * n * batch, 0.5),
      Cref(m * n * batch, 0.5);
  for (auto& v : A) v = rng.uniform(-1, 1);
  for (auto& v : B) v = rng.uniform(-1, 1);
  gemm_strided_batched<double>('N', 'N', m, n, k, 2.0, A.data(), m, m * k, B.data(), k, k * n,
                               3.0, C.data(), m, m * n, batch);
  for (index_t b = 0; b < batch; ++b)
    gemm<double>('N', 'N', m, n, k, 2.0, A.data() + b * m * k, m, B.data() + b * k * n, k, 3.0,
                 Cref.data() + b * m * n, m);
  for (index_t i = 0; i < static_cast<index_t>(C.size()); ++i)
    EXPECT_NEAR(C[i], Cref[i], 1e-12);
}

TEST(BatchedGemm, ZeroStrideSharesOperand) {
  // strideA = 0: the same cell matrix applied to every batch member, the
  // pattern used on structured meshes where all cells share the reference
  // Hamiltonian.
  Rng rng(22);
  const index_t m = 6, k = 6, n = 4, batch = 8;
  std::vector<double> A(m * k), B(k * n * batch), C(m * n * batch, 0.0);
  for (auto& v : A) v = rng.uniform(-1, 1);
  for (auto& v : B) v = rng.uniform(-1, 1);
  gemm_strided_batched<double>('N', 'N', m, n, k, 1.0, A.data(), m, 0, B.data(), k, k * n, 0.0,
                               C.data(), m, m * n, batch);
  for (index_t b = 0; b < batch; ++b) {
    std::vector<double> Cb(m * n, 0.0);
    gemm<double>('N', 'N', m, n, k, 1.0, A.data(), m, B.data() + b * k * n, k, 0.0, Cb.data(),
                 m);
    for (index_t i = 0; i < m * n; ++i) EXPECT_NEAR(C[b * m * n + i], Cb[i], 1e-13);
  }
}

TEST(BatchedGemm, ComplexTransposeOps) {
  Rng rng(23);
  const index_t m = 5, n = 5, k = 7, batch = 3;
  std::vector<complex_t> A(k * m * batch), B(k * n * batch), C(m * n * batch);
  for (auto& v : A) v = complex_t(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (auto& v : B) v = complex_t(rng.uniform(-1, 1), rng.uniform(-1, 1));
  gemm_strided_batched<complex_t>('C', 'N', m, n, k, complex_t(1), A.data(), k, k * m,
                                  B.data(), k, k * n, complex_t(0), C.data(), m, m * n, batch);
  for (index_t b = 0; b < batch; ++b) {
    std::vector<complex_t> Cb(m * n, complex_t(0));
    gemm<complex_t>('C', 'N', m, n, k, complex_t(1), A.data() + b * k * m, k,
                    B.data() + b * k * n, k, complex_t(0), Cb.data(), m);
    for (index_t i = 0; i < m * n; ++i) {
      EXPECT_NEAR(C[b * m * n + i].real(), Cb[i].real(), 1e-12);
      EXPECT_NEAR(C[b * m * n + i].imag(), Cb[i].imag(), 1e-12);
    }
  }
}

// ---------- Cholesky ----------

template <class T>
class CholeskyTyped : public ::testing::Test {};
using CholeskyTypes = ::testing::Types<double, complex_t>;
TYPED_TEST_SUITE(CholeskyTyped, CholeskyTypes);

TYPED_TEST(CholeskyTyped, FactorReconstructsMatrix) {
  using T = TypeParam;
  Rng rng(31);
  for (index_t n : {1, 2, 5, 24, 61}) {
    Matrix<T> A = random_spd<T>(n, rng);
    Matrix<T> L = A;
    ASSERT_TRUE(cholesky_lower(L));
    Matrix<T> R(n, n);
    gemm('N', 'C', T(1), L, L, T(0), R);
    EXPECT_LT(max_abs_diff(A, R), 1e-9 * n) << "n=" << n;
  }
}

TYPED_TEST(CholeskyTyped, InverseOfLowerTriangular) {
  using T = TypeParam;
  Rng rng(32);
  const index_t n = 30;
  Matrix<T> A = random_spd<T>(n, rng);
  Matrix<T> L = A;
  ASSERT_TRUE(cholesky_lower(L));
  Matrix<T> Linv = L;
  invert_lower_triangular(Linv);
  Matrix<T> I(n, n);
  gemm('N', 'N', T(1), L, Linv, T(0), I);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const double expect = (i == j) ? 1.0 : 0.0;
      EXPECT_NEAR(scalar_traits<T>::real(I(i, j)), expect, 1e-10);
    }
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix<double> A(2, 2);
  A(0, 0) = 1.0;
  A(1, 1) = -1.0;
  EXPECT_FALSE(cholesky_lower(A));
}

// ---------- eigensolvers ----------

TEST(SymmetricEig, DiagonalizesKnown2x2) {
  Matrix<double> A(2, 2);
  A(0, 0) = 2.0;
  A(1, 1) = 2.0;
  A(0, 1) = A(1, 0) = 1.0;
  std::vector<double> ev;
  Matrix<double> V;
  symmetric_eig(A, ev, V);
  EXPECT_NEAR(ev[0], 1.0, 1e-12);
  EXPECT_NEAR(ev[1], 3.0, 1e-12);
}

template <class T>
void check_eig_residual(const Matrix<T>& A, const std::vector<double>& ev,
                        const Matrix<T>& V, double tol) {
  const index_t n = A.rows();
  // ||A v - ev v|| small, V orthonormal, eigenvalues ascending.
  Matrix<T> AV(n, n);
  gemm('N', 'N', T(1), A, V, T(0), AV);
  for (index_t j = 0; j < n; ++j) {
    double res = 0.0;
    for (index_t i = 0; i < n; ++i)
      res += scalar_traits<T>::abs2(AV(i, j) - T(ev[j]) * V(i, j));
    EXPECT_LT(std::sqrt(res), tol) << "column " << j;
    if (j > 0) {
      EXPECT_LE(ev[j - 1], ev[j] + 1e-12);
    }
  }
  Matrix<T> G(n, n);
  gemm('C', 'N', T(1), V, V, T(0), G);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(scalar_traits<T>::real(G(i, j)), i == j ? 1.0 : 0.0, tol);
}

class EigSizes : public ::testing::TestWithParam<int> {};

TEST_P(EigSizes, RandomSymmetric) {
  const index_t n = GetParam();
  Rng rng(40 + n);
  Matrix<double> A = random_hermitian<double>(n, rng);
  std::vector<double> ev;
  Matrix<double> V;
  symmetric_eig(A, ev, V);
  check_eig_residual(A, ev, V, 1e-8 * n);
}

TEST_P(EigSizes, RandomComplexHermitian) {
  const index_t n = GetParam();
  Rng rng(50 + n);
  Matrix<complex_t> A = random_hermitian<complex_t>(n, rng);
  std::vector<double> ev;
  Matrix<complex_t> V;
  hermitian_eig(A, ev, V);
  check_eig_residual(A, ev, V, 1e-7 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSizes, ::testing::Values(1, 2, 3, 8, 25, 64, 120));

TEST(HermitianEig, HandlesDegenerateSpectrum) {
  // Identity-plus-rank-one has an (n-1)-fold degenerate eigenvalue.
  const index_t n = 12;
  Matrix<complex_t> A(n, n);
  for (index_t i = 0; i < n; ++i) A(i, i) = complex_t(2.0);
  std::vector<complex_t> u(n);
  for (index_t i = 0; i < n; ++i) u[i] = complex_t(1.0 / std::sqrt(double(n)), 0.0);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) A(i, j) += u[i] * std::conj(u[j]);
  std::vector<double> ev;
  Matrix<complex_t> V;
  hermitian_eig(A, ev, V);
  for (index_t j = 0; j + 1 < n; ++j) EXPECT_NEAR(ev[j], 2.0, 1e-10);
  EXPECT_NEAR(ev[n - 1], 3.0, 1e-10);
  check_eig_residual(A, ev, V, 1e-8 * n);
}

TEST(SymmetricEig, TraceAndDeterminantInvariants) {
  Rng rng(61);
  const index_t n = 20;
  Matrix<double> A = random_hermitian<double>(n, rng);
  std::vector<double> ev;
  Matrix<double> V;
  symmetric_eig(A, ev, V);
  double tr = 0.0, evsum = 0.0;
  for (index_t i = 0; i < n; ++i) {
    tr += A(i, i);
    evsum += ev[i];
  }
  EXPECT_NEAR(tr, evsum, 1e-9);
}

// ---------- iterative solvers ----------

TEST(Pcg, SolvesSpdSystem) {
  Rng rng(71);
  const index_t n = 80;
  Matrix<double> A = random_spd<double>(n, rng);
  std::vector<double> b(n), x(n, 0.0);
  for (auto& v : b) v = rng.uniform(-1, 1);
  auto op = [&](const std::vector<double>& in, std::vector<double>& out) {
    out.assign(n, 0.0);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) out[i] += A(i, j) * in[j];
  };
  auto prec = [&](const std::vector<double>& in, std::vector<double>& out) {
    out.resize(n);
    for (index_t i = 0; i < n; ++i) out[i] = in[i] / A(i, i);
  };
  auto rep = pcg<double>(op, prec, b, x, 1e-12, 500);
  EXPECT_TRUE(rep.converged);
  std::vector<double> Ax;
  op(x, Ax);
  double err = 0.0;
  for (index_t i = 0; i < n; ++i) err = std::max(err, std::abs(Ax[i] - b[i]));
  EXPECT_LT(err, 1e-8);
}

TEST(Pcg, JacobiPreconditionerReducesIterations) {
  // Strongly diagonal-scaled SPD system: Jacobi should help a lot.
  const index_t n = 200;
  Rng rng(72);
  Matrix<double> A(n, n);
  for (index_t i = 0; i < n; ++i) A(i, i) = 1.0 + 1000.0 * rng.uniform(0, 1);
  for (index_t i = 0; i + 1 < n; ++i) A(i, i + 1) = A(i + 1, i) = 0.3;
  std::vector<double> b(n, 1.0), x0(n, 0.0), x1(n, 0.0);
  auto op = [&](const std::vector<double>& in, std::vector<double>& out) {
    out.assign(n, 0.0);
    for (index_t i = 0; i < n; ++i) {
      out[i] += A(i, i) * in[i];
      if (i > 0) out[i] += A(i, i - 1) * in[i - 1];
      if (i + 1 < n) out[i] += A(i, i + 1) * in[i + 1];
    }
  };
  auto ident = [&](const std::vector<double>& in, std::vector<double>& out) { out = in; };
  auto jac = [&](const std::vector<double>& in, std::vector<double>& out) {
    out.resize(n);
    for (index_t i = 0; i < n; ++i) out[i] = in[i] / A(i, i);
  };
  auto rep_plain = pcg<double>(op, ident, b, x0, 1e-10, 5000);
  auto rep_jac = pcg<double>(op, jac, b, x1, 1e-10, 5000);
  EXPECT_TRUE(rep_plain.converged);
  EXPECT_TRUE(rep_jac.converged);
  EXPECT_LT(rep_jac.iterations, rep_plain.iterations);
}

template <class T>
void run_block_minres_shifted() {
  // (A - eps_j I) x_j = b_j with A symmetric indefinite after shifting:
  // verifies the per-column-shift plumbing the invDFT adjoint solve needs.
  Rng rng(81);
  const index_t n = 60, nb = 4;
  Matrix<T> A = random_hermitian<T>(n, rng);
  for (index_t i = 0; i < n; ++i) A(i, i) += T(6.0);
  std::vector<double> shifts{-1.0, 0.5, 1.5, 2.5};
  Matrix<T> B = random_matrix<T>(n, nb, rng);
  Matrix<T> X(n, nb);
  auto op = [&](const Matrix<T>& in, Matrix<T>& out) {
    gemm('N', 'N', T(1), A, in, T(0), out);
    for (index_t j = 0; j < nb; ++j)
      for (index_t i = 0; i < n; ++i) out(i, j) -= T(shifts[j]) * in(i, j);
  };
  auto prec = [&](const Matrix<T>& in, Matrix<T>& out) { out = in; };
  auto rep = block_minres<T>(op, prec, B, X, 1e-10, 2000);
  EXPECT_TRUE(rep.converged);
  Matrix<T> R(n, nb);
  op(X, R);
  for (index_t j = 0; j < nb; ++j) {
    double err = 0.0;
    for (index_t i = 0; i < n; ++i) err += scalar_traits<T>::abs2(R(i, j) - B(i, j));
    EXPECT_LT(std::sqrt(err), 1e-7) << "column " << j;
  }
}

TEST(BlockMinres, SolvesShiftedSystemsReal) { run_block_minres_shifted<double>(); }
TEST(BlockMinres, SolvesShiftedSystemsComplex) { run_block_minres_shifted<complex_t>(); }

TEST(BlockMinres, SolvesIndefiniteSystem) {
  // A has negative and positive eigenvalues; CG would fail, MINRES must not.
  const index_t n = 50;
  Matrix<double> A(n, n);
  for (index_t i = 0; i < n; ++i) A(i, i) = (i < n / 2) ? -2.0 - i * 0.1 : 1.0 + i * 0.1;
  for (index_t i = 0; i + 1 < n; ++i) A(i, i + 1) = A(i + 1, i) = 0.05;
  Rng rng(83);
  Matrix<double> B = random_matrix<double>(n, 2, rng);
  Matrix<double> X(n, 2);
  auto op = [&](const Matrix<double>& in, Matrix<double>& out) {
    gemm('N', 'N', 1.0, A, in, 0.0, out);
  };
  auto prec = [&](const Matrix<double>& in, Matrix<double>& out) { out = in; };
  auto rep = block_minres<double>(op, prec, B, X, 1e-10, 3000);
  EXPECT_TRUE(rep.converged);
  Matrix<double> R(2, 2);
  Matrix<double> AX(n, 2);
  op(X, AX);
  EXPECT_LT(max_abs_diff(AX, B), 1e-7);
}

TEST(BlockMinres, PreconditionerReducesIterations) {
  // Diagonally ill-conditioned SPD system; diag preconditioner should give a
  // large iteration reduction (the paper reports ~5x for the adjoint solve).
  const index_t n = 300;
  Matrix<double> diag(n, 1);
  Rng rng(84);
  for (index_t i = 0; i < n; ++i) diag(i, 0) = 1.0 + 500.0 * rng.uniform(0, 1);
  Matrix<double> B = random_matrix<double>(n, 3, rng);
  auto op = [&](const Matrix<double>& in, Matrix<double>& out) {
    out.resize(n, in.cols());
    for (index_t j = 0; j < in.cols(); ++j)
      for (index_t i = 0; i < n; ++i) {
        double v = diag(i, 0) * in(i, j);
        if (i > 0) v += 0.4 * in(i - 1, j);
        if (i + 1 < n) v += 0.4 * in(i + 1, j);
        out(i, j) = v;
      }
  };
  auto ident = [&](const Matrix<double>& in, Matrix<double>& out) { out = in; };
  auto dprec = [&](const Matrix<double>& in, Matrix<double>& out) {
    out.resize(n, in.cols());
    for (index_t j = 0; j < in.cols(); ++j)
      for (index_t i = 0; i < n; ++i) out(i, j) = in(i, j) / diag(i, 0);
  };
  Matrix<double> X0(n, 3), X1(n, 3);
  auto rep0 = block_minres<double>(op, ident, B, X0, 1e-9, 5000);
  auto rep1 = block_minres<double>(op, dprec, B, X1, 1e-9, 5000);
  EXPECT_TRUE(rep0.converged);
  EXPECT_TRUE(rep1.converged);
  EXPECT_GT(rep0.iterations, 2 * rep1.iterations);
}

TEST(Lanczos, UpperBoundsSpectrum) {
  Rng rng(91);
  const index_t n = 120;
  Matrix<double> A = random_hermitian<double>(n, rng);
  std::vector<double> ev;
  Matrix<double> V;
  symmetric_eig(A, ev, V);
  auto op = [&](const std::vector<double>& in, std::vector<double>& out) {
    out.assign(n, 0.0);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) out[i] += A(i, j) * in[j];
  };
  const double ub = lanczos_upper_bound<double>(op, n, 15);
  EXPECT_GE(ub, ev.back() - 1e-9);
  EXPECT_LT(ub, ev.back() + 0.5 * (ev.back() - ev.front()) + 10.0);
}

// ---------- mixed precision ----------

TEST(Mixed, DemotePromoteRoundTrip) {
  Rng rng(95);
  const index_t n = 1000;
  std::vector<double> x(n), y(n);
  std::vector<float> f(n);
  for (auto& v : x) v = rng.uniform(-10, 10);
  demote<double>(x.data(), f.data(), n);
  promote<double>(f.data(), y.data(), n);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], y[i], 2e-6 * std::abs(x[i]) + 1e-12);
}

TEST(Mixed, LowPrecisionGemmCloseToFp64) {
  Rng rng(96);
  const index_t m = 40, n = 30, k = 50;
  Matrix<double> A = random_matrix<double>(m, k, rng);
  Matrix<double> B = random_matrix<double>(k, n, rng);
  Matrix<double> C64(m, n), C32(m, n);
  gemm('N', 'N', 1.0, A, B, 0.0, C64);
  gemm_low_precision<double>('N', 'N', m, n, k, A.data(), A.ld(), B.data(), B.ld(), C32.data(),
                             C32.ld());
  EXPECT_LT(max_abs_diff(C64, C32), 1e-4 * k);
  EXPECT_GT(max_abs_diff(C64, C32), 0.0);  // genuinely reduced precision
}

TEST(Mixed, ComplexLowPrecisionGemm) {
  Rng rng(97);
  const index_t m = 12, n = 9, k = 20;
  Matrix<complex_t> A = random_matrix<complex_t>(k, m, rng);
  Matrix<complex_t> B = random_matrix<complex_t>(k, n, rng);
  Matrix<complex_t> C64(m, n), C32(m, n);
  gemm('C', 'N', complex_t(1), A, B, complex_t(0), C64);
  gemm_low_precision<complex_t>('C', 'N', m, n, k, A.data(), A.ld(), B.data(), B.ld(),
                                C32.data(), C32.ld());
  EXPECT_LT(max_abs_diff(C64, C32), 1e-4 * k);
}

TEST(Mixed, DemotePanelCompactsStridedColumns) {
  // demote_panel reads exactly `rows` entries per column of a strided
  // (ld > rows) source and writes a compact rows x cols destination.
  // Regression: the demotion used to convert the full ld*cols extent, which
  // overruns the final column of a trailing submatrix panel.
  Rng rng(98);
  const index_t ld = 11, rows = 6, cols = 4;
  std::vector<double> src(static_cast<std::size_t>(ld * cols));
  for (auto& v : src) v = rng.uniform(-5, 5);
  std::vector<float> dst(static_cast<std::size_t>(rows * cols), -1.0f);
  demote_panel<double>(src.data(), ld, rows, cols, dst.data());
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i)
      EXPECT_EQ(dst[i + j * rows], static_cast<float>(src[i + j * ld]));
}

TEST(Mixed, LowPrecisionGemmOnTrailingSubmatrixPanels) {
  // Operands are bottom-right panels of a larger parent matrix, so the
  // leading dimension exceeds the panel row count and the last panel column
  // ends exactly at the parent's final element. Reading lda*cols entries
  // from the panel pointer (the pre-fix behavior) runs past the parent's
  // heap block — this is the ASan regression case for the demotion overread.
  Rng rng(99);
  const index_t M = 20, N = 15;
  Matrix<double> P = random_matrix<double>(M, N, rng);
  const index_t m = 7, n = 5, k = 6;
  const double* A = P.data() + (M - m) + (N - k) * M;  // m x k, lda = M
  const double* B = P.data() + (M - k) + (N - n) * M;  // k x n, ldb = M
  Matrix<double> C64(m, n), C32(m, n);
  gemm<double>('N', 'N', m, n, k, 1.0, A, M, B, M, 0.0, C64.data(), C64.ld());
  gemm_low_precision<double>('N', 'N', m, n, k, A, M, B, M, C32.data(), C32.ld());
  EXPECT_LT(max_abs_diff(C64, C32), 1e-4 * k);
}

TEST(Mixed, ComplexLowPrecisionGemmOnStridedPanels) {
  // Same overread regression for the 'C' path, where the stored operand is
  // k x m and the compacted demotion target differs from the op() shape.
  Rng rng(100);
  const index_t M = 18, N = 14;
  Matrix<complex_t> P = random_matrix<complex_t>(M, N, rng);
  const index_t m = 5, n = 4, k = 6;
  const complex_t* A = P.data() + (M - k) + (N - m) * M;  // k x m stored, op 'C'
  const complex_t* B = P.data() + (M - k) + (N - n) * M;  // k x n stored
  Matrix<complex_t> C64(m, n), C32(m, n);
  gemm<complex_t>('C', 'N', m, n, k, complex_t(1), A, M, B, M, complex_t(0), C64.data(),
                  C64.ld());
  gemm_low_precision<complex_t>('C', 'N', m, n, k, A, M, B, M, C32.data(), C32.ld());
  EXPECT_LT(max_abs_diff(C64, C32), 1e-4 * k);
}

}  // namespace
}  // namespace dftfe::la
