// Tests for the threaded multi-rank slab engine (dd/engine.hpp): equivalence
// of the real sync/async execution against the undecomposed reference path
// (Hamiltonian apply and the full Chebyshev filter), FP32-wire tolerance,
// bare-stiffness (Poisson) mode, the simulator-vs-measured overlap sanity
// bounds, failure propagation, and the zero-allocation steady state.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/timer.hpp"
#include "dd/backend.hpp"
#include "dd/engine.hpp"
#include "dd/pipeline.hpp"
#include "fe/cell_ops.hpp"
#include "fe/dofs.hpp"
#include "fe/mesh.hpp"
#include "ks/chfes.hpp"
#include "ks/hamiltonian.hpp"
#include "la/iterative.hpp"
#include "la/workspace.hpp"

namespace dftfe::dd {
namespace {

// A small Mg-like cell: a few Gaussian wells standing in for the local part
// of the Mg pseudopotential, deep enough to bind states well below the
// spectrum edge.
std::vector<double> mg_like_potential(const fe::DofHandler& dofh, double L) {
  const std::array<std::array<double, 3>, 2> sites{{{0.35 * L, 0.45 * L, 0.55 * L},
                                                    {0.65 * L, 0.55 * L, 0.40 * L}}};
  std::vector<double> v(dofh.ndofs(), 0.0);
  for (index_t g = 0; g < dofh.ndofs(); ++g) {
    const auto p = dofh.dof_point(g);
    double val = 0.0;
    for (const auto& s : sites) {
      const double r2 = (p[0] - s[0]) * (p[0] - s[0]) + (p[1] - s[1]) * (p[1] - s[1]) +
                        (p[2] - s[2]) * (p[2] - s[2]);
      val += -2.5 * std::exp(-r2 / (0.8 * 0.8));
    }
    v[g] = val;
  }
  return v;
}

template <class T>
double filter_bounds(const ks::Hamiltonian<T>& H, double* a, double* a0) {
  // Same recipe as the solver's first-cycle bound update, pinned explicitly
  // so reference and engine runs share the exact interval.
  auto op = [&H](const std::vector<T>& x, std::vector<T>& y) { H.apply(x, y); };
  const double b = la::lanczos_upper_bound<T>(op, H.n(), 14);
  double vmin = 0.0;
  for (index_t i = 0; i < H.n(); ++i) vmin = std::min(vmin, H.potential()[i]);
  *a0 = vmin - 1.0;
  *a = *a0 + 0.15 * (b - *a0);
  return b;
}

template <class T>
double max_diff(const la::Matrix<T>& A, const la::Matrix<T>& B) {
  double m = 0.0;
  for (index_t i = 0; i < A.size(); ++i)
    m = std::max(m, std::abs(A.data()[i] - B.data()[i]));
  return m;
}

TEST(SlabEngine, ApplyMatchesReferenceAcrossLaneCounts) {
  const double L = 8.0;
  for (const bool periodic : {false, true}) {
    const auto mesh = fe::make_uniform_mesh(L, 4, periodic);
    fe::DofHandler dofh(mesh, 3);
    ks::Hamiltonian<double> H(dofh);
    H.set_potential(mg_like_potential(dofh, L));
    la::Matrix<double> X(dofh.ndofs(), 6);
    for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.13 * i) + 0.2;
    la::Matrix<double> Yref;
    H.apply(X, Yref);
    for (const int lanes : {1, 2, 4}) {
      EngineOptions opt;
      opt.nlanes = lanes;
      opt.mode = EngineMode::async;
      SlabEngine<double> eng(dofh, opt);
      eng.set_potential(H.potential());
      la::Matrix<double> Y;
      eng.apply(X, Y);
      const double d = max_diff(Y, Yref);
      EXPECT_LT(d, 1e-12) << "periodic=" << periodic << " lanes=" << lanes;
      if (lanes == 1 && !periodic) {
        // An undecomposed single lane runs the identical kernels on the
        // identical mesh: bitwise equality, not just tolerance.
        EXPECT_EQ(d, 0.0);
      }
    }
  }
}

TEST(SlabEngine, SyncAndAsyncAreBitwiseIdentical) {
  const double L = 8.0;
  const auto mesh = fe::make_uniform_mesh(L, 4, true);
  fe::DofHandler dofh(mesh, 3);
  ks::Hamiltonian<double> H(dofh);
  H.set_potential(mg_like_potential(dofh, L));
  double a = 0.0, a0 = 0.0;
  const double b = filter_bounds(H, &a, &a0);

  auto run = [&](EngineMode mode, la::Matrix<double>& X) {
    EngineOptions opt;
    opt.nlanes = 4;
    opt.mode = mode;
    SlabEngine<double> eng(dofh, opt);
    eng.set_potential(H.potential());
    eng.filter_block(X, 0, X.cols(), 8, a, b, a0);
  };
  la::Matrix<double> Xs(dofh.ndofs(), 4), Xa(dofh.ndofs(), 4);
  for (index_t i = 0; i < Xs.size(); ++i)
    Xs.data()[i] = Xa.data()[i] = std::cos(0.21 * i) * 0.3;
  run(EngineMode::sync, Xs);
  run(EngineMode::async, Xa);
  // Same arithmetic in the same order in both schedules: exactly equal.
  EXPECT_EQ(max_diff(Xs, Xa), 0.0);
}

// The tentpole equivalence criterion: the threaded engine's filtered
// subspace matches the undecomposed ChFES filter to 1e-12 on a small
// Mg-like cell, for p in {3, 5}, in both execution modes.
TEST(SlabEngine, FilteredSubspaceMatchesReferenceP3P5) {
  const double L = 8.0;
  for (const int degree_fe : {3, 5}) {
    const auto mesh = fe::make_uniform_mesh(L, degree_fe == 3 ? 4 : 3, true);
    fe::DofHandler dofh(mesh, degree_fe);
    ks::Hamiltonian<double> H(dofh);
    H.set_potential(mg_like_potential(dofh, L));
    double a = 0.0, a0 = 0.0;
    const double b = filter_bounds(H, &a, &a0);

    ks::ChfesOptions copt;
    copt.cheb_degree = 10;
    copt.block_size = 8;
    ks::ChebyshevFilteredSolver<double> ref(H, 12, copt);
    ref.initialize_random(7);
    ref.set_bounds(a, b, a0);
    ref.filter();

    for (const auto mode : {EngineMode::sync, EngineMode::async}) {
      EngineOptions opt;
      opt.nlanes = (degree_fe == 3) ? 4 : 3;
      opt.mode = mode;
      ThreadedBackend<double> be(dofh, opt);
      be.set_potential(H.potential());
      ks::ChebyshevFilteredSolver<double> sol(H, 12, copt);
      sol.initialize_random(7);
      sol.set_bounds(a, b, a0);
      sol.set_backend(&be);
      sol.filter();
      EXPECT_LT(max_diff(sol.subspace(), ref.subspace()), 1e-12)
          << "p=" << degree_fe << " mode=" << (mode == EngineMode::sync ? "sync" : "async");
    }
  }
}

TEST(SlabEngine, ComplexKpointFilterMatchesReference) {
  const double L = 8.0;
  const auto mesh = fe::make_uniform_mesh(L, 4, true);
  fe::DofHandler dofh(mesh, 3);
  const std::array<double, 3> kpt{0.1, 0.0, 0.05};
  ks::Hamiltonian<complex_t> H(dofh, kpt);
  H.set_potential(mg_like_potential(dofh, L));
  double a = 0.0, a0 = 0.0;
  const double b = filter_bounds(H, &a, &a0);

  ks::ChfesOptions copt;
  copt.cheb_degree = 8;
  copt.block_size = 6;
  ks::ChebyshevFilteredSolver<complex_t> ref(H, 6, copt);
  ref.initialize_random(11);
  ref.set_bounds(a, b, a0);
  ref.filter();

  EngineOptions opt;
  opt.nlanes = 3;
  opt.kpoint = kpt;
  ThreadedBackend<complex_t> be(dofh, opt);
  be.set_potential(H.potential());
  ks::ChebyshevFilteredSolver<complex_t> sol(H, 6, copt);
  sol.initialize_random(11);
  sol.set_bounds(a, b, a0);
  sol.set_backend(&be);
  sol.filter();
  EXPECT_LT(max_diff(sol.subspace(), ref.subspace()), 1e-12);
}

TEST(SlabEngine, Fp32WireDriftsAtSinglePrecisionOnly) {
  const double L = 8.0;
  const auto mesh = fe::make_uniform_mesh(L, 4, true);
  fe::DofHandler dofh(mesh, 3);
  ks::Hamiltonian<double> H(dofh);
  H.set_potential(mg_like_potential(dofh, L));
  la::Matrix<double> X(dofh.ndofs(), 4);
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.31 * i);
  la::Matrix<double> Yref;
  H.apply(X, Yref);

  EngineOptions opt;
  opt.nlanes = 4;
  opt.wire = Wire::fp32;
  SlabEngine<double> eng(dofh, opt);
  eng.set_potential(H.potential());
  la::Matrix<double> Y;
  eng.apply(X, Y);
  const double d = max_diff(Y, Yref);
  // Interface planes see the neighbor's partial after an FP32 round trip —
  // real drift, but at single-precision epsilon level, exactly like the
  // distributed FP32 wire of Sec. 5.4.2.
  EXPECT_GT(d, 0.0);
  double scale = 0.0;
  for (index_t i = 0; i < Yref.size(); ++i)
    scale = std::max(scale, std::abs(Yref.data()[i]));
  EXPECT_LT(d, 1e-5 * scale);
  // Wire bytes on the wire are half the FP64 payload for the same traffic.
  EngineOptions o64 = opt;
  o64.wire = Wire::fp64;
  SlabEngine<double> eng64(dofh, o64);
  eng64.set_potential(H.potential());
  eng64.apply(X, Y);
  EXPECT_EQ(2 * eng.comm_stats().bytes, eng64.comm_stats().bytes);
}

TEST(SlabEngine, BareStiffnessModeMatchesPoissonOperator) {
  const auto mesh = fe::make_uniform_mesh(6.0, 4, false);
  fe::DofHandler dofh(mesh, 3);
  fe::CellStiffness<double> A(dofh, 1.0);
  la::Matrix<double> X(dofh.ndofs(), 3);
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::cos(0.17 * i);
  la::Matrix<double> Yref(dofh.ndofs(), 3);
  Yref.zero();
  A.apply_add(X, Yref);

  EngineOptions opt;
  opt.nlanes = 3;
  opt.hamiltonian = false;
  opt.coef_lap = 1.0;
  SlabEngine<double> eng(dofh, opt);
  la::Matrix<double> Y;
  eng.apply(X, Y);
  EXPECT_LT(max_diff(Y, Yref), 1e-12);
}

TEST(SlabEngine, MeasuredWallRespectsSimulatorBounds) {
  // With an injected wire delay the measured filter wall must land between
  // the pipeline simulator's perfect-overlap and fully-synchronous
  // schedules (generous slack: the engine posts halos earlier in a step
  // than the simulator's block-granular model assumes, and CI machines are
  // noisy).
  const double L = 8.0;
  const auto mesh = fe::make_uniform_mesh(L, 4, false);
  fe::DofHandler dofh(mesh, 3);
  ks::Hamiltonian<double> H(dofh);
  H.set_potential(mg_like_potential(dofh, L));
  double a = 0.0, a0 = 0.0;
  const double b = filter_bounds(H, &a, &a0);

  EngineOptions opt;
  opt.nlanes = 2;
  opt.mode = EngineMode::sync;
  opt.inject_wire_delay = true;
  opt.model.bandwidth_bytes_per_s = 5e6;  // ~2 ms per 8-column halo packet
  opt.model.latency_s = 1e-4;
  SlabEngine<double> eng(dofh, opt);
  eng.set_potential(H.potential());

  la::Matrix<double> X(dofh.ndofs(), 8);
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.19 * i);
  const int degree = 8;
  Timer wall;
  eng.filter_block(X, 0, 8, degree, a, b, a0);
  const double measured = wall.seconds();

  std::vector<BlockTiming> blocks;
  double modeled_total = 0.0;
  for (const auto& st : eng.last_step_stats()) {
    blocks.push_back({st.compute, st.modeled});
    modeled_total += st.modeled;
  }
  ASSERT_EQ(blocks.size(), static_cast<std::size_t>(degree));
  EXPECT_GT(modeled_total, 5e-3);  // the injected delay is non-trivial
  // Sync mode really pays the wire: the slept delays are in the wall.
  EXPECT_GT(measured, 0.8 * modeled_total);
  EXPECT_GE(measured, 0.5 * simulate_overlap(blocks));
  EXPECT_LE(measured, 2.0 * simulate_sync(blocks) + 0.05);

  // Async on the same problem overlaps at least part of the wire time and
  // still respects the simulator's lower bound.
  eng.set_mode(EngineMode::async);
  Timer wall2;
  eng.filter_block(X, 0, 8, degree, a, b, a0);
  const double measured_async = wall2.seconds();
  blocks.clear();
  for (const auto& st : eng.last_step_stats()) blocks.push_back({st.compute, st.modeled});
  EXPECT_GE(measured_async, 0.5 * simulate_overlap(blocks));
  EXPECT_LE(measured_async, 2.0 * simulate_sync(blocks) + 0.05);
}

TEST(SlabEngine, LaneFaultPropagatesAndEngineRecovers) {
  const auto mesh = fe::make_uniform_mesh(6.0, 4, true);
  fe::DofHandler dofh(mesh, 3);
  ks::Hamiltonian<double> H(dofh);
  H.set_potential(std::vector<double>(dofh.ndofs(), -0.5));
  EngineOptions opt;
  opt.nlanes = 4;
  SlabEngine<double> eng(dofh, opt);
  eng.set_potential(H.potential());

  la::Matrix<double> X(dofh.ndofs(), 3), Y, Yref;
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.41 * i);
  H.apply(X, Yref);

  for (const int lane : {0, 2}) {
    EXPECT_THROW(eng.debug_fault(lane), std::runtime_error);
    // The poisoned mailboxes were reset: the next job runs and is correct.
    eng.apply(X, Y);
    EXPECT_LT(max_diff(Y, Yref), 1e-12);
  }
}

TEST(SlabEngine, SteadyStateAllocatesNothing) {
  const double L = 8.0;
  const auto mesh = fe::make_uniform_mesh(L, 4, true);
  fe::DofHandler dofh(mesh, 3);
  ks::Hamiltonian<double> H(dofh);
  H.set_potential(mg_like_potential(dofh, L));
  double a = 0.0, a0 = 0.0;
  const double b = filter_bounds(H, &a, &a0);

  EngineOptions opt;
  opt.nlanes = 4;
  SlabEngine<double> eng(dofh, opt);
  eng.set_potential(H.potential());
  la::Matrix<double> X(dofh.ndofs(), 6);
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::cos(0.23 * i);

  // Warm-up sizes every lane buffer, mailbox slot, and GEMM panel...
  eng.filter_block(X, 0, 6, 6, a, b, a0);
  la::Matrix<double> Y;
  eng.apply(X, Y);
  la::WorkspaceCounters::reset();
  // ...after which the engine's hot loop never touches the heap.
  for (int rep = 0; rep < 3; ++rep) {
    eng.filter_block(X, 0, 6, 6, a, b, a0);
    eng.apply(X, Y);
  }
  EXPECT_EQ(la::WorkspaceCounters::allocations(), 0);
  EXPECT_GT(la::WorkspaceCounters::checkouts(), 0);
}

TEST(SlabEngine, CommStatsCountBothDirectionsPerInterface) {
  const auto mesh = fe::make_uniform_mesh(6.0, 4, false);
  fe::DofHandler dofh(mesh, 3);
  EngineOptions opt;
  opt.nlanes = 4;
  opt.grid = {1, 1, 4};  // pin the z-slab layout: the counts below are slab-exact
  opt.hamiltonian = false;
  opt.coef_lap = 1.0;
  SlabEngine<double> eng(dofh, opt);
  la::Matrix<double> X(dofh.ndofs(), 5), Y;
  eng.apply(X, Y);
  const auto st = eng.comm_stats();
  // 3 interfaces, each: 2 sends + 2 receives of one 5-column plane packet.
  const index_t plane = dofh.naxis(0) * dofh.naxis(1);
  EXPECT_EQ(st.messages, 3 * 4);
  EXPECT_EQ(st.bytes, 3 * 4 * static_cast<std::int64_t>(plane) * 5 * 8);
  EXPECT_GT(st.modeled_seconds, 0.0);
  eng.clear_comm_stats();
  EXPECT_EQ(eng.comm_stats().messages, 0);
}

// --- 3D brick decomposition -------------------------------------------------

// The brick tentpole equivalence criterion: a true 3D brick grid (x/y/z all
// split, faces + edges + corners exchanging) matches the undecomposed
// reference apply and ChFES filter to 1e-12, for p in {3, 5}, periodic and
// non-periodic, in both execution modes.
TEST(BrickEngine, ApplyMatchesReferenceOn3DGrids) {
  const double L = 8.0;
  for (const bool periodic : {false, true}) {
    const auto mesh = fe::make_uniform_mesh(L, 4, periodic);
    fe::DofHandler dofh(mesh, 3);
    ks::Hamiltonian<double> H(dofh);
    H.set_potential(mg_like_potential(dofh, L));
    la::Matrix<double> X(dofh.ndofs(), 6);
    for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.13 * i) + 0.2;
    la::Matrix<double> Yref;
    H.apply(X, Yref);
    for (const std::array<int, 3> grid : {std::array<int, 3>{2, 2, 1},
                                          std::array<int, 3>{2, 1, 2},
                                          std::array<int, 3>{2, 2, 2}}) {
      for (const auto mode : {EngineMode::sync, EngineMode::async}) {
        EngineOptions opt;
        opt.grid = grid;
        opt.nlanes = grid[0] * grid[1] * grid[2];
        opt.mode = mode;
        RankEngine<double> eng(dofh, opt);
        EXPECT_EQ(eng.nlanes(), opt.nlanes);
        eng.set_potential(H.potential());
        la::Matrix<double> Y;
        eng.apply(X, Y);
        EXPECT_LT(max_diff(Y, Yref), 1e-12)
            << "periodic=" << periodic << " grid=" << grid[0] << "x" << grid[1] << "x"
            << grid[2] << " mode=" << (mode == EngineMode::sync ? "sync" : "async");
      }
    }
  }
}

TEST(BrickEngine, FilteredSubspaceMatchesReferenceP3P5) {
  const double L = 8.0;
  for (const int degree_fe : {3, 5}) {
    const auto mesh = fe::make_uniform_mesh(L, degree_fe == 3 ? 4 : 3, true);
    fe::DofHandler dofh(mesh, degree_fe);
    ks::Hamiltonian<double> H(dofh);
    H.set_potential(mg_like_potential(dofh, L));
    double a = 0.0, a0 = 0.0;
    const double b = filter_bounds(H, &a, &a0);

    ks::ChfesOptions copt;
    copt.cheb_degree = 10;
    copt.block_size = 8;
    ks::ChebyshevFilteredSolver<double> ref(H, 12, copt);
    ref.initialize_random(7);
    ref.set_bounds(a, b, a0);
    ref.filter();

    EngineOptions opt;
    opt.grid = (degree_fe == 3) ? std::array<int, 3>{2, 2, 2} : std::array<int, 3>{3, 1, 1};
    opt.nlanes = opt.grid[0] * opt.grid[1] * opt.grid[2];
    ThreadedBackend<double> be(dofh, opt);
    be.set_potential(H.potential());
    ks::ChebyshevFilteredSolver<double> sol(H, 12, copt);
    sol.initialize_random(7);
    sol.set_bounds(a, b, a0);
    sol.set_backend(&be);
    sol.filter();
    EXPECT_LT(max_diff(sol.subspace(), ref.subspace()), 1e-12) << "p=" << degree_fe;
  }
}

TEST(BrickEngine, SyncAndAsyncAreBitwiseIdenticalOn2x2x1) {
  const double L = 8.0;
  const auto mesh = fe::make_uniform_mesh(L, 4, true);
  fe::DofHandler dofh(mesh, 3);
  ks::Hamiltonian<double> H(dofh);
  H.set_potential(mg_like_potential(dofh, L));
  double a = 0.0, a0 = 0.0;
  const double b = filter_bounds(H, &a, &a0);

  auto run = [&](EngineMode mode, la::Matrix<double>& X) {
    EngineOptions opt;
    opt.grid = {2, 2, 1};
    opt.nlanes = 4;
    opt.mode = mode;
    RankEngine<double> eng(dofh, opt);
    eng.set_potential(H.potential());
    eng.filter_block(X, 0, X.cols(), 8, a, b, a0);
  };
  la::Matrix<double> Xs(dofh.ndofs(), 4), Xa(dofh.ndofs(), 4);
  for (index_t i = 0; i < Xs.size(); ++i)
    Xs.data()[i] = Xa.data()[i] = std::cos(0.21 * i) * 0.3;
  run(EngineMode::sync, Xs);
  run(EngineMode::async, Xa);
  // Same arithmetic, same fixed 26-direction post/receive order in both
  // schedules: exactly equal, even with edge/corner packets in flight.
  EXPECT_EQ(max_diff(Xs, Xa), 0.0);
}

TEST(BrickEngine, DegenerateGridMatchesSlabEngineBitwise) {
  // A {1, 1, N} brick grid must be byte-for-byte the historical slab engine:
  // same cell splits, same packets, same arithmetic order.
  const double L = 8.0;
  const auto mesh = fe::make_uniform_mesh(L, 4, false);
  fe::DofHandler dofh(mesh, 3);
  ks::Hamiltonian<double> H(dofh);
  H.set_potential(mg_like_potential(dofh, L));
  la::Matrix<double> X(dofh.ndofs(), 5);
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.29 * i);

  EngineOptions oa;
  oa.nlanes = 4;  // factorize(4) on an elongated-free cube keeps all 4 lanes
  oa.grid = {1, 1, 4};
  RankEngine<double> slab(dofh, oa);
  slab.set_potential(H.potential());
  la::Matrix<double> Ys;
  slab.apply(X, Ys);

  EngineOptions ob;
  ob.grid = {2, 2, 1};
  ob.nlanes = 4;
  RankEngine<double> brick(dofh, ob);
  brick.set_potential(H.potential());
  la::Matrix<double> Yb;
  brick.apply(X, Yb);

  // Both decompositions agree with each other to association order...
  EXPECT_LT(max_diff(Ys, Yb), 1e-12);
  // ...and the brick moves strictly fewer halo bytes than the slab at the
  // same lane count on this cube (the surface-minimization payoff).
  EXPECT_LT(brick.comm_stats().bytes, slab.comm_stats().bytes);
}

TEST(BrickEngine, GramTreeReductionMatchesSerialOverlap) {
  const auto mesh = fe::make_uniform_mesh(6.0, 4, false);
  fe::DofHandler dofh(mesh, 3);
  const index_t n = dofh.ndofs(), nst = 7;
  la::Matrix<double> A(n, nst), B(n, nst);
  for (index_t i = 0; i < A.size(); ++i) {
    A.data()[i] = std::sin(0.17 * i) + 0.1;
    B.data()[i] = std::cos(0.11 * i) - 0.2;
  }
  la::Matrix<double> Sref;
  la::overlap_hermitian_mixed(A, B, Sref, 64, false);

  EngineOptions opt;
  opt.grid = {2, 2, 2};
  opt.nlanes = 8;
  opt.hamiltonian = false;
  opt.coef_lap = 1.0;
  RankEngine<double> eng(dofh, opt);
  la::Matrix<double> S;
  eng.overlap(A, B, S, 64, false);
  // Brick-local partials + log2-depth tree sum reassociate the row sums:
  // equal to the serial Gram to FP association order.
  for (index_t j = 0; j < nst; ++j)
    for (index_t i = 0; i < nst; ++i)
      EXPECT_NEAR(S(i, j), Sref(i, j), 1e-11 * n) << i << "," << j;
}

}  // namespace
}  // namespace dftfe::dd
