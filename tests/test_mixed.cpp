// Tests for the reduced-precision kernels of la/mixed.hpp, with emphasis on
// the BF16 wire scalar (tentpole satellite): round-to-nearest-even demotion
// accuracy bounds, exact representability, special values, the complex
// two-unit packing, and the typed BF16 byte accounting of the modeled
// BoundaryExchange.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "dd/exchange.hpp"
#include "dd/partition.hpp"
#include "fe/dofs.hpp"
#include "fe/mesh.hpp"
#include "la/matrix.hpp"
#include "la/mixed.hpp"

namespace dftfe::la {
namespace {

TEST(Bf16, RoundTripRelativeErrorIsBoundedByHalfUlp) {
  // BF16 keeps 8 significand bits (1 implicit + 7 stored), so RNE rounding
  // of any normal float has relative error <= 2^-9 ... 2^-8; use the safe
  // half-ulp bound 2^-8 and sweep magnitudes across the exponent range the
  // halo partials actually span.
  const double bound = std::ldexp(1.0, -8);
  for (int e = -60; e <= 60; e += 3)
    for (double m : {1.0, 1.3, 1.7071067811865475, 1.9999}) {
      const double x = std::ldexp(m, e);
      for (const double s : {x, -x}) {
        const double rt = static_cast<double>(bf16_to_float(
            bf16_from_float(static_cast<float>(s))));
        EXPECT_LE(std::abs(rt - s), bound * std::abs(s)) << "x=" << s;
      }
    }
}

TEST(Bf16, ExactValuesSurviveAndSpecialsArePreserved) {
  // Values with <= 8 significand bits are exact in BF16.
  for (double x : {0.0, 1.0, -1.0, 0.5, 1.5, 2.0, 100.0, -240.0, 65536.0}) {
    const float rt = bf16_to_float(bf16_from_float(static_cast<float>(x)));
    EXPECT_EQ(rt, static_cast<float>(x)) << x;
  }
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_to_float(bf16_from_float(inf)), inf);
  EXPECT_EQ(bf16_to_float(bf16_from_float(-inf)), -inf);
  // NaN must stay NaN (and be quieted, not rounded into an infinity).
  EXPECT_TRUE(std::isnan(bf16_to_float(
      bf16_from_float(std::numeric_limits<float>::quiet_NaN()))));
  EXPECT_TRUE(std::isnan(bf16_to_float(
      bf16_from_float(std::numeric_limits<float>::signaling_NaN()))));
  // Signed zero keeps its sign bit.
  EXPECT_TRUE(std::signbit(bf16_to_float(bf16_from_float(-0.0f))));
}

TEST(Bf16, DemotionRoundsToNearestEven) {
  // 1 + 2^-8 is exactly halfway between 1.0 (0x3F80) and 1 + 2^-7 (0x3F81):
  // RNE picks the even mantissa, 1.0. 1 + 3*2^-8 is halfway between 0x3F81
  // and 0x3F82: RNE picks 0x3F82.
  EXPECT_EQ(bf16_from_float(1.0f + std::ldexp(1.0f, -8)), 0x3F80);
  EXPECT_EQ(bf16_from_float(1.0f + 3.0f * std::ldexp(1.0f, -8)), 0x3F82);
  // Just above the tie rounds up.
  EXPECT_EQ(bf16_from_float(1.0f + std::ldexp(1.2f, -8)), 0x3F81);
}

TEST(Bf16, PanelDemotePromoteRealAndComplex) {
  const index_t n = 257;  // odd, larger than any vector unroll
  std::vector<double> x(n), xr(n);
  for (index_t i = 0; i < n; ++i) x[i] = std::ldexp(std::sin(0.37 * i + 0.1), i % 21 - 10);
  std::vector<bf16_t> w(n);
  demote_bf16(x.data(), w.data(), n);
  promote_bf16(w.data(), xr.data(), n);
  const double bound = std::ldexp(1.0, -8);
  for (index_t i = 0; i < n; ++i)
    EXPECT_LE(std::abs(xr[i] - x[i]), bound * std::abs(x[i]) + 1e-300) << i;

  std::vector<std::complex<double>> z(n), zr(n);
  for (index_t i = 0; i < n; ++i)
    z[i] = std::complex<double>(std::cos(0.23 * i), -std::sin(0.31 * i));
  std::vector<bf16_t> wz(2 * n);  // two units per complex value
  demote_bf16(z.data(), wz.data(), n);
  promote_bf16(wz.data(), zr.data(), n);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_LE(std::abs(zr[i].real() - z[i].real()), bound * std::abs(z[i].real()) + 1e-300);
    EXPECT_LE(std::abs(zr[i].imag() - z[i].imag()), bound * std::abs(z[i].imag()) + 1e-300);
    EXPECT_EQ(zr[i], bf16_load<std::complex<double>>(wz.data() + 2 * i)) << i;
  }
}

TEST(Bf16, WireValueBytesPerFormat) {
  using dd::Wire;
  EXPECT_EQ(dd::wire_value_bytes<double>(Wire::fp64), 8);
  EXPECT_EQ(dd::wire_value_bytes<double>(Wire::fp32), 4);
  EXPECT_EQ(dd::wire_value_bytes<double>(Wire::bf16), 2);
  EXPECT_EQ(dd::wire_value_bytes<std::complex<double>>(Wire::fp64), 16);
  EXPECT_EQ(dd::wire_value_bytes<std::complex<double>>(Wire::fp32), 8);
  EXPECT_EQ(dd::wire_value_bytes<std::complex<double>>(Wire::bf16), 4);
}

TEST(Bf16, BoundaryExchangeAccountsBf16BytesAndRoundsValues) {
  // The modeled exchange under the BF16 wire: byte accounting at 2 bytes per
  // double (quarter of FP64), and the interface planes genuinely pass
  // through BF16 storage (values change by at most the half-ulp bound).
  const fe::Mesh mesh = fe::make_uniform_mesh(4.0, 4, true);
  const fe::DofHandler dofh(mesh, 2);
  const dd::SlabPartition part = dd::SlabPartition::cell_aligned(dofh, 2);
  dd::BoundaryExchange<double> ex(part, dd::Wire::bf16);

  la::Matrix<double> X(dofh.ndofs(), 3);
  for (index_t i = 0; i < X.size(); ++i) X.data()[i] = std::sin(0.29 * i);
  la::Matrix<double> X0 = X;
  ex.exchange(X);

  index_t plane_count = 0;
  for (const index_t z : part.interface_planes()) {
    const auto [lo, hi] = part.plane_range(z);
    plane_count += hi - lo;
  }
  const std::int64_t expect_bytes = 2 * plane_count * X.cols() *
                                    dd::wire_value_bytes<double>(dd::Wire::bf16);
  EXPECT_EQ(ex.stats().bytes, expect_bytes);
  const double bound = std::ldexp(1.0, -8);
  double max_rel = 0.0;
  bool changed = false;
  for (index_t i = 0; i < X.size(); ++i) {
    const double d = std::abs(X.data()[i] - X0.data()[i]);
    if (d > 0.0) changed = true;
    if (std::abs(X0.data()[i]) > 0.0) max_rel = std::max(max_rel, d / std::abs(X0.data()[i]));
  }
  EXPECT_TRUE(changed) << "BF16 exchange left every value bit-identical";
  EXPECT_LE(max_rel, bound);
}

}  // namespace
}  // namespace dftfe::la
