// Unit tests for the base utilities: timers, FLOP accounting, RNG, tables.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "base/defs.hpp"
#include "base/flops.hpp"
#include "base/rng.hpp"
#include "base/table.hpp"
#include "base/timer.hpp"

namespace dftfe {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(ProfileRegistry, AccumulatesNamedSections) {
  ProfileRegistry reg;
  reg.add("CF", 1.5);
  reg.add("CF", 0.5);
  reg.add("RR-P", 0.25);
  EXPECT_DOUBLE_EQ(reg.seconds("CF"), 2.0);
  EXPECT_EQ(reg.find("CF")->count, 2);
  EXPECT_DOUBLE_EQ(reg.seconds("RR-P"), 0.25);
  EXPECT_DOUBLE_EQ(reg.seconds("missing"), 0.0);
  EXPECT_EQ(reg.find("missing"), nullptr);
}

TEST(ProfileRegistry, ScopedTimerFeedsRegistry) {
  ProfileRegistry reg;
  {
    ScopedTimer st("section", reg);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(reg.seconds("section"), 0.005);
  EXPECT_EQ(reg.find("section")->count, 1);
}

TEST(FlopCounter, CountsAndAttributesSteps) {
  FlopCounter c;
  c.add(100.0);
  c.set_step("CF");
  c.add(250.0);
  c.set_step("");
  c.add(50.0);
  EXPECT_DOUBLE_EQ(c.total(), 400.0);
  EXPECT_DOUBLE_EQ(c.step("CF"), 250.0);
  EXPECT_DOUBLE_EQ(c.step("RR"), 0.0);
  c.clear();
  EXPECT_DOUBLE_EQ(c.total(), 0.0);
}

TEST(FlopCounter, ScopedStepRestoresUnattributed) {
  FlopCounter& g = FlopCounter::global();
  g.clear();
  {
    ScopedFlopStep step("CholGS-S");
    g.add(42.0);
  }
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.step("CholGS-S"), 42.0);
  EXPECT_DOUBLE_EQ(g.total(), 43.0);
  g.clear();
}

TEST(FlopCounter, ThreadSafeAccumulation) {
  FlopCounter c;
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; ++t)
    ts.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.add(1.0);
    });
  for (auto& t : ts) t.join();
  EXPECT_DOUBLE_EQ(c.total(), 8000.0);
}

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(77), b(77);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng r(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(1.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, IntegerWithinRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.integer(17), 17u);
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"step", "time (s)"});
  t.add("CF", TextTable::num(1.234, 2));
  t.add("RR-SR", TextTable::num(10.0, 2));
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("CF"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("10.00"), std::string::npos);
  EXPECT_NE(s.find("step"), std::string::npos);
}

TEST(TextTable, NumericFormatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::sci(12345.0, 2), "1.23e+04");
}

TEST(ScalarTraits, FlopFactorsAndConjugation) {
  EXPECT_DOUBLE_EQ(scalar_traits<double>::flop_factor, 1.0);
  EXPECT_DOUBLE_EQ(scalar_traits<complex_t>::flop_factor, 4.0);
  EXPECT_FALSE(scalar_traits<double>::is_complex);
  EXPECT_TRUE(scalar_traits<complex_t>::is_complex);
  EXPECT_EQ(scalar_traits<complex_t>::conj(complex_t(1, 2)), complex_t(1, -2));
  EXPECT_DOUBLE_EQ(scalar_traits<complex_t>::abs2(complex_t(3, 4)), 25.0);
}

}  // namespace
}  // namespace dftfe
