// Defect-separation sweep through the multi-tenant job service — the
// production shape of the paper's science workloads (Sec. 6.2): one
// structure family (a periodic Mg supercell), many related solves (a screw
// dislocation dipole at varying separations). The immutable half — mesh,
// DofHandler, XC functional — is built ONCE as a core::SharedModel; each
// separation is a core::JobOptions with a family-sibling structure, run
// concurrently by svc::JobService workers with per-job workspace pools,
// per-job RunReports, and dftfe.checkpoint.v1 checkpoint/restart.
//
// The CI service-soak leg drives the full resilience story with this
// binary:
//   sweep_service --dir out                      # clean baseline energies
//   sweep_service --dir out2 --kill-job sep_1 --kill-iter 2
//                                                # hard-killed mid-SCF (exit 3)
//   sweep_service --dir out2                     # resumes from checkpoints
// and asserts the resumed energies equal the baseline to 1e-10 Ha.
//
// Flags: --jobs N, --workers N, --dir PATH, --max-iter N, --quick,
//        --kill-job NAME --kill-iter I (exit(3) after that iteration's
//        checkpoint is on disk). Backend comes from the shared DFTFE_*
//        environment parser (dd::BackendOptions::from_env).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "atoms/defects.hpp"
#include "atoms/lattice.hpp"
#include "base/table.hpp"
#include "core/job.hpp"
#include "core/model.hpp"
#include "svc/service.hpp"

int main(int argc, char** argv) {
  using namespace dftfe;

  int njobs = 4, workers = 2, max_iter = 25, kill_iter = -1;
  std::string dir = "sweep_out", kill_job;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sweep_service: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--jobs") == 0) njobs = std::atoi(next("--jobs"));
    else if (std::strcmp(argv[i], "--workers") == 0) workers = std::atoi(next("--workers"));
    else if (std::strcmp(argv[i], "--dir") == 0) dir = next("--dir");
    else if (std::strcmp(argv[i], "--max-iter") == 0) max_iter = std::atoi(next("--max-iter"));
    else if (std::strcmp(argv[i], "--kill-job") == 0) kill_job = next("--kill-job");
    else if (std::strcmp(argv[i], "--kill-iter") == 0) kill_iter = std::atoi(next("--kill-iter"));
    else if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else {
      std::fprintf(stderr, "sweep_service: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (njobs < 1) njobs = 1;

  const double a = 6.06, c = 9.84;  // Mg lattice (Bohr)

  // The family parent: pristine periodic Mg supercell. Every sweep point
  // perturbs atom positions only (screw-dipole z displacements), so the box
  // — and therefore the mesh and DofHandler — is shared.
  atoms::Structure parent = atoms::make_hcp(atoms::Species::Mg, a, c, 2, 1, 1);

  core::ModelOptions mopt;
  mopt.functional = "LDA";
  mopt.fe_degree = quick ? 2 : 3;
  mopt.mesh_size = quick ? 3.2 : 2.8;
  const std::int64_t builds_before = core::SharedModel::built_count();
  auto model = std::make_shared<const core::SharedModel>(parent, mopt);

  dd::BackendOptions backend;
  try {
    backend = dd::BackendOptions::from_env();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_service: %s\n", e.what());
    return 2;
  }

  svc::ServiceOptions sopt;
  sopt.workers = workers;
  sopt.checkpoint_dir = dir + "/ckpt";
  sopt.report_dir = dir + "/reports";
  sopt.checkpoint_every = 1;
  svc::JobService service(model, sopt);

  std::printf("== Mg screw-dipole separation sweep (%d jobs, %d workers) ==\n", njobs, workers);
  const auto& box = model->structure().box;
  for (int j = 0; j < njobs; ++j) {
    // Dipole separation sweep along x: from a quarter box up to half box.
    const double sep = box[0] * (0.25 + 0.25 * j / std::max(1, njobs - 1));
    atoms::Structure st = model->structure();
    atoms::apply_screw_dipole(st, c, {(box[0] - sep) * 0.5, box[1] * 0.5},
                              {(box[0] + sep) * 0.5, box[1] * 0.5});
    core::JobOptions job;
    job.name = "sep_" + std::to_string(j);
    job.structure = std::move(st);
    job.backend = backend;
    job.scf.max_iterations = max_iter;
    job.scf.density_tol = quick ? 1e-5 : 2e-6;
    job.scf.temperature = 0.01;
    if (!kill_job.empty() && kill_iter > 0) {
      const std::string victim = kill_job;
      const int kiter = kill_iter;
      job.on_iteration = [victim, kiter](core::JobState& js, int done) {
        // The service's checkpoint hook already ran for this iteration, so
        // the artifact for `done` is on disk. _Exit models a hard kill —
        // no destructors, no flushes.
        if (js.name() == victim && done >= kiter) {
          std::printf("SWEEP_KILLED %s at iteration %d\n", victim.c_str(), done);
          std::fflush(stdout);
          std::_Exit(3);
        }
      };
    }
    service.submit(std::move(job));
  }

  const auto outcomes = service.drain();
  const std::int64_t builds = core::SharedModel::built_count() - builds_before;

  TextTable t({"job", "E total (Ha)", "iters", "resumed@", "worker", "status"});
  bool all_ok = true;
  for (const auto& o : outcomes) {
    all_ok = all_ok && o.ok && o.result.scf.converged;
    t.add(o.name, o.ok ? TextTable::num(o.result.energy, 6) : std::string("-"),
          o.ok ? o.result.scf.iterations : 0, o.resumed_from, o.worker,
          o.ok ? (o.result.scf.converged ? "converged" : "max-iter") : o.error);
  }
  t.print();
  std::printf("shared model builds this run: %lld (mesh+functional amortized across %zu jobs)\n",
              static_cast<long long>(builds), outcomes.size());

  // Machine-greppable lines for the CI service-soak leg.
  for (const auto& o : outcomes)
    if (o.ok)
      std::printf("SWEEP_JOB %s ENERGY_HA %.12e ITERS %d RESUMED_FROM %d\n", o.name.c_str(),
                  o.result.energy, o.result.scf.iterations, o.resumed_from);
  std::printf("SWEEP_MODEL_BUILDS %lld\n", static_cast<long long>(builds));
  std::printf(all_ok ? "SWEEP_OK\n" : "SWEEP_FAILED\n");
  std::printf("reports: %s/reports/<job>.report.json  checkpoints: %s/ckpt/<job>.ckpt.json\n",
              dir.c_str(), dir.c_str());
  return all_ok ? 0 : 1;
}
