// The paper's central methodological loop, end to end (Secs. 5.1-5.2):
//
//   QMB (full CI)  ->  invDFT (exact v_xc)  ->  MLXC training  ->  KS-DFT
//
// run on the 1D soft-Coulomb surrogate universe (DESIGN.md): exact densities
// from full CI for a training set of 1D "molecules", exact XC potentials by
// inverse DFT, a DNN enhancement-factor functional trained with the
// composite MSE(E_xc) + MSE(rho v_xc) loss, and finally self-consistent
// Kohn-Sham calculations on held-out systems comparing LDA vs MLXC accuracy
// against the exact (FCI) energies — the Fig. 3 story.

#include <cmath>
#include <cstdio>

#include "base/table.hpp"
#include "invdft/invert1d.hpp"
#include "onedim/ks1d.hpp"
#include "qmb/fci.hpp"

int main() {
  using namespace dftfe;
  using onedim::KohnSham1D;

  const qmb::Grid1D grid(121, 26.0);
  auto lda = std::make_shared<onedim::LdaX1D>(1.0);

  auto make_molecule = [](double Z1, double Z2, double R) {
    qmb::Molecule1D mol;
    if (Z2 > 0)
      mol.nuclei = {{-R / 2, Z1, 1.0}, {R / 2, Z2, 1.0}};
    else
      mol.nuclei = {{0.0, Z1, 1.0}};
    mol.n_electrons = 2;
    mol.b = 1.0;
    return mol;
  };

  // Training set (the paper trains on H2, LiH, Li, N, Ne — five small
  // systems; here: three 2-electron 1D analogs).
  const std::vector<qmb::Molecule1D> train = {
      make_molecule(1.0, 1.0, 1.6),  // "H2"
      make_molecule(2.0, 0.0, 0.0),  // "He"
      make_molecule(3.0, 1.0, 3.2),  // "LiH"-like
      make_molecule(2.0, 1.0, 2.8),  // heteronuclear, covers the ZH channel
      make_molecule(1.0, 1.0, 2.0),  // intermediate H2 separation
  };
  // Held-out test set.
  const std::vector<std::pair<std::string, qmb::Molecule1D>> test = {
      {"H2 (stretched)", make_molecule(1.0, 1.0, 2.4)},
      {"heteronuclear ZH", make_molecule(2.0, 1.0, 2.0)},
      {"compressed H2", make_molecule(1.0, 1.0, 1.1)},
  };

  std::printf("== invDFT pipeline: FCI -> exact v_xc -> MLXC -> KS-DFT ==\n");

  // 1) FCI reference + inverse DFT on the training set.
  std::vector<onedim::Mlxc1DSystem> systems;
  for (std::size_t m = 0; m < train.size(); ++m) {
    const auto& mol = train[m];
    const auto fci = qmb::solve_two_electron_fci(grid, mol);
    const auto vxc = invdft::invert_two_electron_analytic(grid, mol, fci.density);

    // Exact E_xc by subtracting T_s (from the inverted KS system), E_ext, E_H.
    const auto vext = qmb::external_potential(grid, mol);
    const auto vh = KohnSham1D::hartree(grid, fci.density, mol.b);
    std::vector<double> vks(grid.n), evals;
    la::MatrixD orb;
    for (index_t i = 0; i < grid.n; ++i) vks[i] = vext[i] + vh[i] + vxc[i];
    KohnSham1D::diagonalize(grid, vks, 1, evals, orb);
    double ts = 2.0 * evals[0], e_ext = 0.0, e_h = 0.0;
    for (index_t i = 0; i < grid.n; ++i) {
      ts -= fci.density[i] * vks[i] * grid.h;
      e_ext += fci.density[i] * vext[i] * grid.h;
      e_h += 0.5 * fci.density[i] * vh[i] * grid.h;
    }
    onedim::Mlxc1DSystem sys;
    sys.exc_total = fci.energy - ts - e_ext - e_h;
    const auto sg = KohnSham1D::gradient_squared(grid, fci.density);
    for (index_t i = 0; i < grid.n; ++i)
      if (fci.density[i] > 1e-6) sys.samples.push_back({fci.density[i], sg[i], vxc[i], grid.h});
    systems.push_back(std::move(sys));
    std::printf("  train system %zu: E_FCI = %+.5f Ha, E_xc^exact = %+.5f Ha, %zu samples\n",
                m, fci.energy, sys.exc_total, systems.back().samples.size());
  }

  // 2) Train MLXC on the exact {rho, v_xc} data (two-stage lr schedule).
  ml::Mlp net({2, 24, 24, 1}, 3);
  onedim::train_mlxc1d(net, *lda, systems, 4000, 2e-3);
  const auto rep = onedim::train_mlxc1d(net, *lda, systems, 3000, 2e-4);
  std::printf("  MLXC trained: mse(Exc) = %.2e, mse(rho vxc) = %.2e\n", rep.loss_exc,
              rep.loss_vxc);
  auto mlxc = std::make_shared<onedim::Mlxc1D>(std::move(net), lda);

  // 3) Evaluate on held-out molecules: LDA vs MLXC vs exact.
  TextTable t({"system", "E_FCI (Ha)", "err LDA (mHa)", "err MLXC (mHa)"});
  double mae_lda = 0.0, mae_ml = 0.0;
  for (const auto& [name, mol] : test) {
    const auto fci = qmb::solve_two_electron_fci(grid, mol);
    const double e_exact = qmb::total_energy(fci, mol);
    const auto r_lda = KohnSham1D(grid, mol, lda).solve();
    const auto r_ml = KohnSham1D(grid, mol, mlxc).solve();
    const double err_l = (r_lda.energy - e_exact) * 1e3;
    const double err_m = (r_ml.energy - e_exact) * 1e3;
    mae_lda += std::abs(err_l) / test.size();
    mae_ml += std::abs(err_m) / test.size();
    t.add(name, TextTable::num(e_exact, 5), TextTable::num(err_l, 2),
          TextTable::num(err_m, 2));
  }
  t.print();
  std::printf("mean |error|: LDA %.2f mHa vs MLXC %.2f mHa  (%s)\n", mae_lda, mae_ml,
              mae_ml < mae_lda ? "MLXC closes the gap toward quantum accuracy"
                               : "unexpected: MLXC did not improve");
  return mae_ml < mae_lda ? 0 : 1;
}
