// Mg <c+a> dislocation / solute interaction — the paper's second science
// application (Sec. 6.2, DislocMgY): a pyramidal-II screw dislocation in Mg
// interacting with an yttrium solute. Cells are laptop-sized (the paper uses
// 6,016 atoms on Frontier); the Y valence is scaled (11 -> 3) to keep the
// electron count small while preserving the solute contrast. The k-point
// sampled (complex Hamiltonian) path along the dislocation line mirrors the
// paper's 2 k-point setup.

#include <cstdio>

#include "atoms/defects.hpp"
#include "atoms/lattice.hpp"
#include "base/table.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace dftfe;
  const double a = 6.06, c = 9.84;  // Mg lattice (Bohr)

  core::SimulationOptions opt;
  opt.functional = "LDA";
  opt.fe_degree = 3;
  opt.mesh_size = 2.5;
  opt.z_override = {{atoms::Species::Y, 3.0}};
  opt.scf.temperature = 0.01;
  opt.scf.max_iterations = 35;
  opt.scf.density_tol = 2e-6;
  // 2 k-points along the (periodic) dislocation line, like the paper.
  opt.kpoints = {{{0.0, 0.0, 0.0}, 1.0}, {{0.0, 0.0, kPi / c}, 1.0}};

  auto run_case = [&](const char* name, bool disloc, bool solute, TextTable& t) {
    atoms::Structure st = atoms::make_hcp(atoms::Species::Mg, a, c, 2, 1, 1);
    if (solute) st.atoms[0].species = atoms::Species::Y;
    if (disloc)
      atoms::apply_screw_dipole(st, c, {st.box[0] * 0.25, st.box[1] * 0.5},
                                {st.box[0] * 0.75, st.box[1] * 0.5});
    core::Simulation sim(std::move(st), opt);
    const auto res = sim.run();
    t.add(name, sim.structure().natoms(), sim.n_electrons(),
          TextTable::num(res.energy, 5), res.scf.converged ? "yes" : "no");
    return res.energy;
  };

  std::printf("== Mg screw-dislocation / Y-solute interaction (periodic supercell) ==\n");
  TextTable t({"system", "atoms", "e-", "E total (Ha)", "conv"});
  const double e0 = run_case("pristine Mg", false, false, t);
  const double ed = run_case("Mg + screw dipole", true, false, t);
  const double es = run_case("Mg + Y solute", false, true, t);
  const double eds = run_case("Mg + dipole + Y solute", true, true, t);
  t.print();

  const double e_disloc = ed - e0;
  const double e_interaction = (eds - e0) - (ed - e0) - (es - e0);
  std::printf("dislocation-dipole formation energy: %+.5f Ha\n", e_disloc);
  std::printf("dislocation-solute interaction energy: %+.5f Ha\n", e_interaction);
  std::printf("(negative interaction = solute attracted to the core, the basis of\n"
              " solute strengthening/softening the paper's Mg-Y study quantifies)\n");
  return 0;
}
