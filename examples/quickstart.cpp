// Quickstart: ground state of a small Mg2 dimer with LDA, using the
// top-level public API. Demonstrates structure setup, SCF, the energy
// breakdown, and the telemetry exports: a Chrome trace (open
// quickstart_trace.json in chrome://tracing or ui.perfetto.dev) and a
// metrics snapshot with per-iteration SCF residuals and per-step wall/FLOP
// attribution. Runs in a few seconds on one core.

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "base/table.hpp"
#include "core/simulation.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"

int main() {
  using namespace dftfe;

  // Two Mg atoms (local pseudopotential, 2 valence electrons each) at a
  // realistic bond-ish distance in an isolated box.
  atoms::Structure st;
  st.atoms = {{atoms::Species::Mg, {0.0, 0.0, 0.0}}, {atoms::Species::Mg, {5.8, 0.0, 0.0}}};
  st.periodic = {false, false, false};

  core::SimulationOptions opt;
  opt.functional = "LDA";
  opt.fe_degree = 4;
  opt.mesh_size = 2.8;
  opt.vacuum = 7.0;
  opt.scf.verbose = true;
  opt.scf.temperature = 5e-3;
  // The dimer solves for ~11 states, below the default 64-column mixed-
  // precision tile — the FP32 off-diagonal CholGS/RR policy (and its FP32
  // wire share in the RunReport comm ledger) would be inert. Shrink the tile
  // so the quickstart exercises the paper's mixed-precision path end to end.
  opt.scf.mp_block = 4;

  // Execution-backend selection from the environment via the shared parser
  // (dd::BackendOptions::from_env), so the same binary serves the CI
  // engine-scf-equivalence and brick-scf-equivalence legs:
  // DFTFE_BACKEND=threaded runs the whole solver stack on brick-rank lanes,
  // DFTFE_NLANES takes a total lane count ("8") or an explicit grid
  // ("2,2,2"), and DFTFE_WIRE / DFTFE_ENGINE_MODE / DFTFE_INJECT_WIRE_DELAY
  // / DFTFE_WIRE_BW drive the RunReport attribution demo
  // (tests/report_diff_e2e.py). DFTFE_REPORT overrides the output path.
  try {
    opt.backend = dd::BackendOptions::from_env(opt.backend);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart: %s\n", e.what());
    return 2;
  }
  opt.report_path = "quickstart_report.json";
  if (const char* rp = std::getenv("DFTFE_REPORT")) opt.report_path = rp;

  std::printf("== DFT-FE-MLXC quickstart: Mg2 dimer, LDA ==\n");
  std::printf("backend: %s",
              opt.backend.kind == dd::BackendKind::threaded ? "threaded" : "serial");
  if (opt.backend.kind == dd::BackendKind::threaded) {
    if (opt.backend.grid[0] > 0 && opt.backend.grid[1] > 0 && opt.backend.grid[2] > 0)
      std::printf(" (%dx%dx%d brick lanes)", opt.backend.grid[0], opt.backend.grid[1],
                  opt.backend.grid[2]);
    else
      std::printf(" (%d lanes)", opt.backend.nlanes);
  }
  std::printf("\n");
  core::Simulation sim(std::move(st), opt);
  std::printf("atoms: %lld   electrons: %.0f   FE dofs: %lld (degree %d)\n",
              static_cast<long long>(sim.structure().natoms()), sim.n_electrons(),
              static_cast<long long>(sim.dofs().ndofs()), opt.fe_degree);

  const auto res = sim.run();

  TextTable t({"quantity", "value"});
  t.add("SCF converged", res.scf.converged ? "yes" : "no");
  t.add("SCF iterations", res.scf.iterations);
  t.add("total energy (Ha)", TextTable::num(res.energy, 6));
  t.add("energy/atom (Ha)", TextTable::num(res.energy_per_atom, 6));
  t.add("band energy (Ha)", TextTable::num(res.scf.energy.band, 6));
  t.add("kinetic T_s (Ha)", TextTable::num(res.scf.energy.kinetic_ts, 6));
  t.add("electrostatic (Ha)", TextTable::num(res.scf.energy.electrostatic, 6));
  t.add("XC energy (Ha)", TextTable::num(res.scf.energy.xc, 6));
  t.add("Fermi level (Ha)", TextTable::num(res.scf.energy.fermi_level, 6));
  t.print();

  // Machine-greppable line for the CI engine-scf-equivalence leg, which
  // runs this binary once per backend and diffs the two energies to 1e-10.
  std::printf("SCF_TOTAL_ENERGY_HA %.12e\n", res.energy);

  std::printf("lowest Kohn-Sham eigenvalues (Ha):");
  const auto& ev = sim.gamma_solver().eigenvalues(0);
  for (std::size_t i = 0; i < std::min<std::size_t>(ev.size(), 5); ++i)
    std::printf(" %.5f", ev[i]);
  std::printf("\n");

  // Telemetry artifacts: the span trace of the whole run and the flat
  // metrics snapshot (scf.residual series, per-step wall times and FLOPs).
  if (obs::write_chrome_trace("quickstart_trace.json"))
    std::printf("trace:   quickstart_trace.json (%zu spans; load in chrome://tracing)\n",
                obs::TraceRecorder::global().size());
  if (obs::write_metrics_snapshot("quickstart_metrics.json"))
    std::printf("metrics: quickstart_metrics.json\n");
  // The RunReport itself is written by Simulation::run() (report_path).
  std::printf("report:  %s (RunReport; diff two with tools/report_diff.py)\n",
              opt.report_path.c_str());
  return res.scf.converged ? 0 : 1;
}
