// Quasicrystal nanoparticle energetics — the paper's first science
// application (Sec. 6.2): size-dependent stability of an icosahedral
// Yb-Cd quasicrystal against a crystalline phase of the same composition.
//
// The geometry is the genuine cut-and-project icosahedral structure; the
// heavy Yb (24 e-) / Cd (20 e-) valences are scaled down (Yb -> 3, Cd -> 2)
// so the calculation runs on one core — the bulk-vs-surface energy
// *competition* is what is under study, and it survives the scaling (see
// DESIGN.md). Energies per atom of carved nanoparticles are compared with
// the periodic crystal reference; the difference divided by the surface
// area per atom estimates the surface-energy penalty of the finite
// quasicrystal particle.

#include <cstdio>

#include "atoms/quasicrystal.hpp"
#include "base/table.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace dftfe;

  atoms::QuasicrystalOptions qopt;
  qopt.scale = 3.4;
  qopt.n_range = 5;

  core::SimulationOptions opt;
  opt.functional = "LDA";
  opt.fe_degree = 3;
  opt.mesh_size = 2.6;
  opt.vacuum = 6.0;
  opt.z_override = {{atoms::Species::Yb, 3.0}, {atoms::Species::Cd, 2.0}};
  opt.scf.temperature = 0.01;
  opt.scf.max_iterations = 40;
  opt.scf.density_tol = 2e-6;

  std::printf("== Icosahedral quasicrystal nanoparticle vs crystal reference ==\n");

  TextTable t({"system", "atoms", "Yb:Cd", "e-", "E/atom (Ha)", "SCF its"});

  // Crystalline reference (periodic, bulk).
  double e_bulk = 0.0;
  {
    atoms::Structure cryst = atoms::make_approximant_crystal(1, qopt);
    core::Simulation sim(std::move(cryst), opt);
    const auto res = sim.run();
    e_bulk = res.energy_per_atom;
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%lld:%lld",
                  static_cast<long long>(sim.structure().count(atoms::Species::Yb)),
                  static_cast<long long>(sim.structure().count(atoms::Species::Cd)));
    t.add("crystal (bulk)", sim.structure().natoms(), ratio, sim.n_electrons(),
          TextTable::num(res.energy_per_atom, 5), res.scf.iterations);
  }

  // Quasicrystal nanoparticles of increasing radius.
  for (double radius : {4.2, 6.2}) {
    atoms::Structure qc = atoms::make_icosahedral_nanoparticle(radius, qopt);
    if (qc.natoms() < 2) continue;
    core::Simulation sim(std::move(qc), opt);
    const auto res = sim.run();
    char name[64], ratio[32];
    std::snprintf(name, sizeof name, "QC nanoparticle R=%.1f", radius);
    std::snprintf(ratio, sizeof ratio, "%lld:%lld",
                  static_cast<long long>(sim.structure().count(atoms::Species::Yb)),
                  static_cast<long long>(sim.structure().count(atoms::Species::Cd)));
    t.add(name, sim.structure().natoms(), ratio, sim.n_electrons(),
          TextTable::num(res.energy_per_atom, 5), res.scf.iterations);
    const double de = res.energy_per_atom - e_bulk;
    std::printf("  R=%.1f: E/atom - E_bulk/atom = %+.5f Ha\n", radius, de);
  }
  t.print();
  std::printf("The per-atom energy difference between finite quasicrystal particles and\n"
              "the periodic crystal, as a function of radius, is the bulk-vs-surface\n"
              "competition that decides size-dependent quasicrystal stability (paper,\n"
              "science application 1). Absolute values here use scaled-down valences.\n");
  return 0;
}
